#include "core/similarity.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace atypical {
namespace {

AtypicalCluster MakeCluster(std::vector<std::pair<uint32_t, double>> sf,
                            std::vector<std::pair<uint32_t, double>> tf) {
  AtypicalCluster c;
  for (const auto& [k, v] : sf) c.spatial.Add(k, v);
  for (const auto& [k, v] : tf) c.temporal.Add(k, v);
  return c;
}

TEST(BalanceTest, KnownValues) {
  EXPECT_DOUBLE_EQ(Balance(BalanceFunction::kMax, 0.2, 0.8), 0.8);
  EXPECT_DOUBLE_EQ(Balance(BalanceFunction::kMin, 0.2, 0.8), 0.2);
  EXPECT_DOUBLE_EQ(Balance(BalanceFunction::kArithmeticMean, 0.2, 0.8), 0.5);
  EXPECT_DOUBLE_EQ(Balance(BalanceFunction::kGeometricMean, 0.25, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(Balance(BalanceFunction::kHarmonicMean, 0.5, 1.0),
                   2.0 / 3.0);
}

TEST(BalanceTest, HarmonicMeanOfZerosIsZero) {
  EXPECT_DOUBLE_EQ(Balance(BalanceFunction::kHarmonicMean, 0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Balance(BalanceFunction::kHarmonicMean, 0.0, 0.5), 0.0);
}

TEST(BalanceTest, ClassicalMeanInequalityChain) {
  // min ≤ harmonic ≤ geometric ≤ arithmetic ≤ max for p1, p2 in (0, 1].
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double p1 = rng.Uniform(0.01, 1.0);
    const double p2 = rng.Uniform(0.01, 1.0);
    const double mn = Balance(BalanceFunction::kMin, p1, p2);
    const double har = Balance(BalanceFunction::kHarmonicMean, p1, p2);
    const double geo = Balance(BalanceFunction::kGeometricMean, p1, p2);
    const double avg = Balance(BalanceFunction::kArithmeticMean, p1, p2);
    const double mx = Balance(BalanceFunction::kMax, p1, p2);
    EXPECT_LE(mn, har + 1e-12);
    EXPECT_LE(har, geo + 1e-12);
    EXPECT_LE(geo, avg + 1e-12);
    EXPECT_LE(avg, mx + 1e-12);
  }
}

TEST(BalanceFunctionNameTest, NamesMatchPaperFigure21) {
  EXPECT_STREQ(BalanceFunctionName(BalanceFunction::kMax), "max");
  EXPECT_STREQ(BalanceFunctionName(BalanceFunction::kMin), "min");
  EXPECT_STREQ(BalanceFunctionName(BalanceFunction::kArithmeticMean), "avg");
  EXPECT_STREQ(BalanceFunctionName(BalanceFunction::kGeometricMean), "geo");
  EXPECT_STREQ(BalanceFunctionName(BalanceFunction::kHarmonicMean), "har");
}

TEST(SimilarityTest, IdenticalClustersScoreOne) {
  const AtypicalCluster c = MakeCluster({{1, 10}, {2, 20}}, {{5, 15}, {6, 15}});
  for (const BalanceFunction g :
       {BalanceFunction::kMax, BalanceFunction::kMin,
        BalanceFunction::kArithmeticMean, BalanceFunction::kGeometricMean,
        BalanceFunction::kHarmonicMean}) {
    EXPECT_DOUBLE_EQ(Similarity(c, c, g), 1.0);
  }
}

TEST(SimilarityTest, DisjointClustersScoreZero) {
  const AtypicalCluster a = MakeCluster({{1, 10}}, {{5, 10}});
  const AtypicalCluster b = MakeCluster({{2, 10}}, {{6, 10}});
  EXPECT_DOUBLE_EQ(Similarity(a, b, BalanceFunction::kMax), 0.0);
}

TEST(SimilarityTest, HandComputedEq3Example) {
  // a: sensors {1:30, 2:10}; b: sensors {2:5, 3:15}.
  // Common key {2}: a fraction = 10/40 = 0.25, b fraction = 5/20 = 0.25.
  const AtypicalCluster a = MakeCluster({{1, 30}, {2, 10}}, {{7, 40}});
  const AtypicalCluster b = MakeCluster({{2, 5}, {3, 15}}, {{7, 20}});
  EXPECT_DOUBLE_EQ(SpatialSimilarity(a, b, BalanceFunction::kArithmeticMean),
                   0.25);
  // Temporal features fully overlap: fractions are 1 and 1.
  EXPECT_DOUBLE_EQ(TemporalSimilarity(a, b, BalanceFunction::kMin), 1.0);
  // Eq. 2: ½(0.25 + 1.0).
  EXPECT_DOUBLE_EQ(Similarity(a, b, BalanceFunction::kArithmeticMean), 0.625);
}

TEST(SimilarityTest, MaxForgivesAsymmetricSizes) {
  // A large cluster fully containing a small one: the small one's common
  // fraction is 1.0, the large one's is small.  max keeps them similar
  // (the paper's §III.C rationale), min does not.
  AtypicalCluster big;
  for (uint32_t s = 0; s < 100; ++s) big.spatial.Add(s, 10.0);
  big.temporal.Add(1, 1000.0);
  AtypicalCluster small = MakeCluster({{0, 5}, {1, 5}}, {{1, 10}});
  const double sf_max = SpatialSimilarity(big, small, BalanceFunction::kMax);
  const double sf_min = SpatialSimilarity(big, small, BalanceFunction::kMin);
  EXPECT_DOUBLE_EQ(sf_max, 1.0);
  EXPECT_NEAR(sf_min, 0.02, 1e-12);
}

TEST(SimilarityTest, SymmetricInArguments) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    AtypicalCluster a;
    AtypicalCluster b;
    for (int i = 0; i < 10; ++i) {
      a.spatial.Add(static_cast<uint32_t>(rng.UniformInt(uint64_t{16})),
                    rng.Uniform(1.0, 9.0));
      b.spatial.Add(static_cast<uint32_t>(rng.UniformInt(uint64_t{16})),
                    rng.Uniform(1.0, 9.0));
      a.temporal.Add(static_cast<uint32_t>(rng.UniformInt(uint64_t{8})),
                     rng.Uniform(1.0, 9.0));
      b.temporal.Add(static_cast<uint32_t>(rng.UniformInt(uint64_t{8})),
                     rng.Uniform(1.0, 9.0));
    }
    for (const BalanceFunction g :
         {BalanceFunction::kMax, BalanceFunction::kMin,
          BalanceFunction::kArithmeticMean, BalanceFunction::kGeometricMean,
          BalanceFunction::kHarmonicMean}) {
      EXPECT_NEAR(Similarity(a, b, g), Similarity(b, a, g), 1e-12);
    }
  }
}

TEST(SimilarityTest, ScoresAlwaysInUnitInterval) {
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    AtypicalCluster a;
    AtypicalCluster b;
    const int na = 1 + static_cast<int>(rng.UniformInt(uint64_t{12}));
    const int nb = 1 + static_cast<int>(rng.UniformInt(uint64_t{12}));
    for (int i = 0; i < na; ++i) {
      a.spatial.Add(static_cast<uint32_t>(rng.UniformInt(uint64_t{10})), 1.0);
      a.temporal.Add(static_cast<uint32_t>(rng.UniformInt(uint64_t{10})), 1.0);
    }
    for (int i = 0; i < nb; ++i) {
      b.spatial.Add(static_cast<uint32_t>(rng.UniformInt(uint64_t{10})), 1.0);
      b.temporal.Add(static_cast<uint32_t>(rng.UniformInt(uint64_t{10})), 1.0);
    }
    for (const BalanceFunction g :
         {BalanceFunction::kMax, BalanceFunction::kMin,
          BalanceFunction::kArithmeticMean, BalanceFunction::kGeometricMean,
          BalanceFunction::kHarmonicMean}) {
      const double sim = Similarity(a, b, g);
      EXPECT_GE(sim, 0.0);
      EXPECT_LE(sim, 1.0);
    }
  }
}

TEST(SimilarityTest, EmptyClusterScoresZero) {
  const AtypicalCluster empty;
  const AtypicalCluster c = MakeCluster({{1, 10}}, {{2, 10}});
  EXPECT_DOUBLE_EQ(Similarity(empty, c, BalanceFunction::kMax), 0.0);
  EXPECT_DOUBLE_EQ(Similarity(empty, empty, BalanceFunction::kMax), 0.0);
}

TEST(SimilarityDeathTest, MixedKeyModesDie) {
  AtypicalCluster a = MakeCluster({{1, 10}}, {{2, 10}});
  AtypicalCluster b = MakeCluster({{1, 10}}, {{2, 10}});
  b.key_mode = TemporalKeyMode::kTimeOfDay;
  EXPECT_DEATH((void)TemporalSimilarity(a, b, BalanceFunction::kMax),
               "key modes");
}

TEST(SimilarityTest, LargeTotalAccumulationStress) {
  // Regression for the 1e-9 absolute DCHECK slack that aborted Debug builds
  // on valid large inputs.  FeatureVector::total_ is an add-order running
  // sum while CommonSeverity() re-sums per-entry severities, so the two can
  // disagree by accumulated rounding.  Construct the worst case cheaply: a
  // 2^53 entry (ulp = 2) at key 0 absorbs every later v < 1 added to
  // total_, while the key-1 entry accumulates the same adds exactly — the
  // common/total fraction lands near 1 + 2.5e-9, past the old slack.
  constexpr double kBig = 9007199254740992.0;  // 2^53
  AtypicalCluster a;
  a.spatial.Add(0, kBig);
  a.temporal.Add(0, kBig);
  Rng rng(29);
  for (int i = 0; i < 30'000'000; ++i) {
    const double v = rng.Uniform(0.5, 1.0);
    a.spatial.Add(1, v);
    a.temporal.Add(1, v);
  }
  // The partner covers both keys, so all of a's mass is "common" and a's
  // fraction is the inflated common/total ratio.
  const AtypicalCluster b = MakeCluster({{0, 1}, {1, 1}}, {{0, 1}, {1, 1}});
  ASSERT_GT(a.spatial.Get(1) / a.spatial.total(), 1e-9)
      << "stress input no longer exceeds the old absolute slack";
  for (const BalanceFunction g :
       {BalanceFunction::kMax, BalanceFunction::kMin,
        BalanceFunction::kArithmeticMean, BalanceFunction::kGeometricMean,
        BalanceFunction::kHarmonicMean}) {
    const double sim = Similarity(a, b, g);  // pre-fix: DCHECK aborts here
    EXPECT_GE(sim, 0.0);
    EXPECT_LE(sim, 1.0);
  }
  // Clamping pins the inflated fraction to exactly 1, so max-balance scores
  // a perfect match.
  EXPECT_DOUBLE_EQ(Similarity(a, b, BalanceFunction::kMax), 1.0);
}

// ---- similarity fast path (DESIGN §11) ----

constexpr BalanceFunction kAllBalanceFunctions[] = {
    BalanceFunction::kMax, BalanceFunction::kMin,
    BalanceFunction::kArithmeticMean, BalanceFunction::kGeometricMean,
    BalanceFunction::kHarmonicMean};

AtypicalCluster RandomCluster(Rng* rng, uint64_t key_space, int num_adds) {
  AtypicalCluster c;
  for (int i = 0; i < num_adds; ++i) {
    c.spatial.Add(static_cast<uint32_t>(rng->UniformInt(key_space)),
                  rng->Uniform(0.5, 8.0));
    c.temporal.Add(static_cast<uint32_t>(rng->UniformInt(key_space)),
                   rng->Uniform(0.5, 8.0));
  }
  return c;
}

TEST(SimilarityFastPathTest, UpperBoundDominatesSimilarity) {
  // The whole fast path rests on UB ≥ Sim; hammer it over clusters of mixed
  // density, span and size for every balance function.
  Rng rng(17);
  for (int trial = 0; trial < 400; ++trial) {
    const uint64_t key_space = 4 + rng.UniformInt(uint64_t{120});
    const AtypicalCluster a = RandomCluster(
        &rng, key_space, 1 + static_cast<int>(rng.UniformInt(uint64_t{40})));
    const AtypicalCluster b = RandomCluster(
        &rng, key_space, 1 + static_cast<int>(rng.UniformInt(uint64_t{40})));
    for (const BalanceFunction g : kAllBalanceFunctions) {
      EXPECT_GE(SimilarityUpperBound(a, b, g), Similarity(a, b, g))
          << "trial " << trial << " g=" << BalanceFunctionName(g);
    }
  }
}

TEST(SimilarityFastPathTest, ExceedsThresholdMatchesExactVerdict) {
  // Fast-path on/off must return the same verdict for every pair, function
  // and threshold — including thresholds right at the similarity value
  // (strictness: Sim == δsim must not exceed).
  Rng rng(31);
  SimilarityScanStats fast_stats;
  SimilarityScanStats exact_stats;
  for (int trial = 0; trial < 200; ++trial) {
    const AtypicalCluster a = RandomCluster(&rng, 64, 12);
    const AtypicalCluster b = RandomCluster(&rng, 64, 12);
    for (const BalanceFunction g : kAllBalanceFunctions) {
      const double sim = Similarity(a, b, g);
      for (const double delta : {0.05, 0.3, 0.5, 0.9, sim}) {
        if (delta <= 0.0) continue;
        const bool fast =
            ExceedsThreshold(a, b, g, delta, &fast_stats, true);
        const bool exact =
            ExceedsThreshold(a, b, g, delta, &exact_stats, false);
        EXPECT_EQ(fast, exact)
            << "g=" << BalanceFunctionName(g) << " delta=" << delta;
        EXPECT_EQ(exact, sim > delta);
      }
    }
  }
  // Accounting: each evaluation lands in exactly one bucket, so the fast
  // path's two counters sum to the exact path's scan count.
  EXPECT_EQ(fast_stats.exact_scans + fast_stats.pruned_scans,
            exact_stats.exact_scans);
  EXPECT_EQ(exact_stats.pruned_scans, 0u);
}

TEST(SimilarityFastPathTest, DisjointSignaturesPruneWithoutScans) {
  // Far-apart key spans are provably dissimilar from the signature alone.
  AtypicalCluster a;
  AtypicalCluster b;
  for (uint32_t k = 0; k < 20; ++k) {
    a.spatial.Add(k, 1.0);
    a.temporal.Add(k, 1.0);
    b.spatial.Add(k + 1000, 1.0);
    b.temporal.Add(k + 1000, 1.0);
  }
  SimilarityScanStats stats;
  for (const BalanceFunction g : kAllBalanceFunctions) {
    EXPECT_DOUBLE_EQ(SimilarityUpperBound(a, b, g), 0.0);
    EXPECT_FALSE(ExceedsThreshold(a, b, g, 0.1, &stats, true));
  }
  EXPECT_EQ(stats.pruned_scans, 5u);
  EXPECT_EQ(stats.exact_scans, 0u);
}

TEST(SimilarityFastPathTest, EmptyClustersAreNotCounted) {
  // The exact path never scans a pair with an empty side, so neither
  // counter may move for one.
  const AtypicalCluster empty;
  const AtypicalCluster c = MakeCluster({{1, 10}}, {{2, 10}});
  SimilarityScanStats stats;
  EXPECT_FALSE(ExceedsThreshold(empty, c, BalanceFunction::kMax, 0.1, &stats,
                                true));
  EXPECT_FALSE(ExceedsThreshold(empty, c, BalanceFunction::kMax, 0.1, &stats,
                                false));
  EXPECT_EQ(stats.exact_scans, 0u);
  EXPECT_EQ(stats.pruned_scans, 0u);
}

TEST(SimilarityFastPathDeathTest, MixedKeyModesDie) {
  AtypicalCluster a = MakeCluster({{1, 10}}, {{2, 10}});
  AtypicalCluster b = MakeCluster({{1, 10}}, {{2, 10}});
  b.key_mode = TemporalKeyMode::kTimeOfDay;
  EXPECT_DEATH((void)ExceedsThreshold(a, b, BalanceFunction::kMax, 0.5),
               "key modes");
  EXPECT_DEATH((void)SimilarityUpperBound(a, b, BalanceFunction::kMax),
               "key modes");
}

TEST(SimilarityTest, PaperExampleMorningVsEvening) {
  // Fig. 7: CA and CB share sensors but never congest at the same time of
  // day; their temporal similarity is 0, halving the overall score.
  const AtypicalCluster morning =
      MakeCluster({{1, 182}, {2, 97}, {3, 33}}, {{32, 150}, {33, 162}});
  const AtypicalCluster evening =
      MakeCluster({{1, 12}, {2, 51}, {3, 34}}, {{73, 50}, {74, 47}});
  EXPECT_DOUBLE_EQ(
      TemporalSimilarity(morning, evening, BalanceFunction::kArithmeticMean),
      0.0);
  EXPECT_GT(
      SpatialSimilarity(morning, evening, BalanceFunction::kArithmeticMean),
      0.9);
  // With δsim = 0.5 they must not merge: Sim ≤ 0.5 strictly.
  EXPECT_LE(Similarity(morning, evening, BalanceFunction::kArithmeticMean),
            0.5);
}

}  // namespace
}  // namespace atypical
