// Algorithm 3: cluster integration — fixpoint semantics, naive/indexed
// equivalence, and micro-id bookkeeping.
#include "core/integration.h"

#include <set>

#include <gtest/gtest.h>

#include "core/merge.h"
#include "util/random.h"

namespace atypical {
namespace {

AtypicalCluster MakeMicro(ClusterIdGenerator* ids,
                          std::vector<std::pair<uint32_t, double>> sf,
                          std::vector<std::pair<uint32_t, double>> tf) {
  AtypicalCluster c;
  c.id = ids->Next();
  c.micro_ids = {c.id};
  for (const auto& [k, v] : sf) c.spatial.Add(k, v);
  for (const auto& [k, v] : tf) c.temporal.Add(k, v);
  return c;
}

std::vector<AtypicalCluster> RandomMicros(int count, uint32_t key_space,
                                          Rng& rng, ClusterIdGenerator* ids) {
  std::vector<AtypicalCluster> out;
  for (int i = 0; i < count; ++i) {
    AtypicalCluster c;
    c.id = ids->Next();
    c.micro_ids = {c.id};
    const int n = 1 + static_cast<int>(rng.UniformInt(uint64_t{6}));
    for (int j = 0; j < n; ++j) {
      c.spatial.Add(static_cast<uint32_t>(rng.UniformInt(uint64_t{key_space})),
                    rng.Uniform(1.0, 10.0));
      c.temporal.Add(
          static_cast<uint32_t>(rng.UniformInt(uint64_t{key_space})),
          rng.Uniform(1.0, 10.0));
    }
    out.push_back(std::move(c));
  }
  return out;
}

TEST(IntegrationTest, EmptyAndSingletonInputs) {
  ClusterIdGenerator ids(1);
  IntegrationParams params;
  EXPECT_TRUE(IntegrateClusters({}, params, &ids).empty());

  std::vector<AtypicalCluster> one;
  one.push_back(MakeMicro(&ids, {{1, 5.0}}, {{1, 5.0}}));
  const auto out = IntegrateClusters(std::move(one), params, &ids);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].severity(), 5.0);
}

TEST(IntegrationTest, IdenticalClustersMerge) {
  ClusterIdGenerator ids(1);
  std::vector<AtypicalCluster> micros;
  micros.push_back(MakeMicro(&ids, {{1, 5.0}, {2, 5.0}}, {{7, 10.0}}));
  micros.push_back(MakeMicro(&ids, {{1, 3.0}, {2, 3.0}}, {{7, 6.0}}));
  IntegrationStats stats;
  const auto out =
      IntegrateClusters(std::move(micros), IntegrationParams{}, &ids, &stats);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].severity(), 16.0);
  EXPECT_EQ(out[0].num_micros(), 2);
  EXPECT_EQ(stats.merges, 1u);
}

TEST(IntegrationTest, DissimilarClustersStayApart) {
  ClusterIdGenerator ids(1);
  std::vector<AtypicalCluster> micros;
  micros.push_back(MakeMicro(&ids, {{1, 5.0}}, {{7, 5.0}}));
  micros.push_back(MakeMicro(&ids, {{2, 5.0}}, {{9, 5.0}}));
  const auto out =
      IntegrateClusters(std::move(micros), IntegrationParams{}, &ids);
  EXPECT_EQ(out.size(), 2u);
}

TEST(IntegrationTest, MorningAndEveningJamsDoNotMerge) {
  // The paper's CA/CB example: same sensors, disjoint times, δsim = 0.5.
  ClusterIdGenerator ids(1);
  std::vector<AtypicalCluster> micros;
  micros.push_back(
      MakeMicro(&ids, {{1, 182.0}, {2, 97.0}}, {{32, 200.0}, {33, 79.0}}));
  micros.push_back(
      MakeMicro(&ids, {{1, 120.0}, {2, 51.0}}, {{70, 100.0}, {71, 71.0}}));
  const auto out =
      IntegrateClusters(std::move(micros), IntegrationParams{}, &ids);
  EXPECT_EQ(out.size(), 2u);
}

TEST(IntegrationTest, TransitiveAbsorption) {
  // A~B and (A+B)~C even though A!~C: the fixpoint loop must catch the
  // second merge after the first.
  ClusterIdGenerator ids(1);
  std::vector<AtypicalCluster> micros;
  micros.push_back(MakeMicro(&ids, {{1, 10.0}, {2, 10.0}}, {{5, 20.0}}));
  micros.push_back(MakeMicro(&ids, {{2, 10.0}, {3, 10.0}}, {{5, 20.0}}));
  micros.push_back(MakeMicro(&ids, {{3, 10.0}, {4, 10.0}}, {{5, 20.0}}));
  IntegrationParams params;
  params.delta_sim = 0.45;
  const auto out = IntegrateClusters(std::move(micros), params, &ids);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].num_micros(), 3);
  EXPECT_DOUBLE_EQ(out[0].severity(), 60.0);
}

TEST(IntegrationTest, FixpointPropertyNoSimilarPairRemains) {
  // After integration, no output pair may exceed δsim (Algorithm 3 line 7).
  Rng rng(5);
  ClusterIdGenerator ids(1);
  for (const double delta_sim : {0.2, 0.5, 0.8}) {
    for (uint64_t seed = 0; seed < 4; ++seed) {
      Rng local(seed * 100 + 9);
      std::vector<AtypicalCluster> micros = RandomMicros(60, 12, local, &ids);
      IntegrationParams params;
      params.delta_sim = delta_sim;
      const auto out = IntegrateClusters(std::move(micros), params, &ids);
      for (size_t i = 0; i < out.size(); ++i) {
        for (size_t j = i + 1; j < out.size(); ++j) {
          ASSERT_LE(Similarity(out[i], out[j], params.g), delta_sim)
              << "δsim=" << delta_sim << " seed=" << seed;
        }
      }
    }
  }
}

TEST(IntegrationTest, MicroIdsArePreservedAsPartition) {
  Rng rng(7);
  ClusterIdGenerator ids(1);
  std::vector<AtypicalCluster> micros = RandomMicros(80, 10, rng, &ids);
  std::set<ClusterId> input_ids;
  double input_severity = 0.0;
  for (const auto& m : micros) {
    input_ids.insert(m.id);
    input_severity += m.severity();
  }
  const auto out =
      IntegrateClusters(std::move(micros), IntegrationParams{}, &ids);
  std::set<ClusterId> output_micro_ids;
  double output_severity = 0.0;
  for (const auto& c : out) {
    output_severity += c.severity();
    for (ClusterId id : c.micro_ids) {
      EXPECT_TRUE(output_micro_ids.insert(id).second)
          << "micro " << id << " appears twice";
    }
  }
  EXPECT_EQ(output_micro_ids, input_ids);
  EXPECT_NEAR(output_severity, input_severity, 1e-6);
}

TEST(IntegrationTest, NaiveAndIndexedProduceIdenticalResults) {
  // The candidate index only skips similarity-0 pairs, so outputs match the
  // quadratic scan feature-for-feature.
  ClusterIdGenerator ids_a(1);
  ClusterIdGenerator ids_b(1);
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng_a(seed);
    Rng rng_b(seed);
    std::vector<AtypicalCluster> micros_a = RandomMicros(70, 9, rng_a, &ids_a);
    std::vector<AtypicalCluster> micros_b = RandomMicros(70, 9, rng_b, &ids_b);
    for (const double delta_sim : {0.3, 0.5, 0.7}) {
      IntegrationParams indexed;
      indexed.delta_sim = delta_sim;
      indexed.use_candidate_index = true;
      IntegrationParams naive;
      naive.delta_sim = delta_sim;
      naive.use_candidate_index = false;
      ClusterIdGenerator out_ids_a(1000);
      ClusterIdGenerator out_ids_b(1000);
      const auto a = IntegrateClusters(micros_a, indexed, &out_ids_a);
      const auto b = IntegrateClusters(micros_b, naive, &out_ids_b);
      ASSERT_EQ(a.size(), b.size()) << "seed " << seed << " δ " << delta_sim;
      for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].micro_ids, b[i].micro_ids) << "cluster " << i;
        ASSERT_EQ(a[i].spatial.entries(), b[i].spatial.entries());
        ASSERT_EQ(a[i].temporal.entries(), b[i].temporal.entries());
      }
    }
  }
}

TEST(IntegrationTest, IndexReducesSimilarityChecks) {
  Rng rng(11);
  ClusterIdGenerator ids(1);
  // Many clusters over a large key space: most pairs share nothing.
  std::vector<AtypicalCluster> micros = RandomMicros(300, 4000, rng, &ids);
  IntegrationParams indexed;
  indexed.use_candidate_index = true;
  IntegrationParams naive;
  naive.use_candidate_index = false;
  IntegrationStats indexed_stats;
  IntegrationStats naive_stats;
  ClusterIdGenerator ids2(10000);
  IntegrateClusters(micros, indexed, &ids2, &indexed_stats);
  IntegrateClusters(micros, naive, &ids2, &naive_stats);
  EXPECT_LT(indexed_stats.similarity_checks,
            naive_stats.similarity_checks / 5);
  EXPECT_EQ(indexed_stats.output_clusters, naive_stats.output_clusters);
}

TEST(IntegrationTest, StatsAreConsistent) {
  Rng rng(13);
  ClusterIdGenerator ids(1);
  std::vector<AtypicalCluster> micros = RandomMicros(50, 8, rng, &ids);
  IntegrationStats stats;
  const auto out =
      IntegrateClusters(std::move(micros), IntegrationParams{}, &ids, &stats);
  EXPECT_EQ(stats.input_clusters, 50u);
  EXPECT_EQ(stats.output_clusters, out.size());
  EXPECT_EQ(stats.input_clusters - stats.merges, stats.output_clusters);
  EXPECT_GE(stats.seconds, 0.0);
}

TEST(IntegrationTest, ScanAccountingSumsToExactPathScans) {
  // The fast path's two counters partition the evaluations the pure exact
  // path scans, so fast.exact + fast.pruned == exact.exact (and the exact
  // path never prunes).
  Rng rng(19);
  ClusterIdGenerator ids(1);
  const std::vector<AtypicalCluster> micros = RandomMicros(60, 10, rng, &ids);
  IntegrationParams fast;
  fast.use_similarity_fast_path = true;
  IntegrationParams exact;
  exact.use_similarity_fast_path = false;
  IntegrationStats fast_stats;
  IntegrationStats exact_stats;
  ClusterIdGenerator ids_a(1000);
  ClusterIdGenerator ids_b(1000);
  IntegrateClusters(micros, fast, &ids_a, &fast_stats);
  IntegrateClusters(micros, exact, &ids_b, &exact_stats);
  EXPECT_EQ(exact_stats.pruned_scans, 0u);
  EXPECT_EQ(fast_stats.exact_scans + fast_stats.pruned_scans,
            exact_stats.exact_scans);
  EXPECT_EQ(fast_stats.output_clusters, exact_stats.output_clusters);
  EXPECT_EQ(fast_stats.merges, exact_stats.merges);
}

TEST(IntegrationTest, ThresholdIsStrict) {
  // Similarity exactly equal to δsim must NOT merge ("larger than").
  ClusterIdGenerator ids(1);
  std::vector<AtypicalCluster> micros;
  // Identical temporal features (TF sim 1.0), disjoint sensors (SF sim 0)
  // -> overall 0.5 under any balance function.
  micros.push_back(MakeMicro(&ids, {{1, 10.0}}, {{5, 10.0}}));
  micros.push_back(MakeMicro(&ids, {{2, 10.0}}, {{5, 10.0}}));
  IntegrationParams params;
  params.delta_sim = 0.5;
  EXPECT_EQ(IntegrateClusters(micros, params, &ids).size(), 2u);
  params.delta_sim = 0.49;
  EXPECT_EQ(IntegrateClusters(micros, params, &ids).size(), 1u);
}

TEST(IntegrationTest, RoundBudgetReturnsValidPartialPartition) {
  // A chain of transitively mergeable clusters: unbounded integration folds
  // them all; a one-round budget stops after the first merge, reports
  // !converged, and still returns a valid partition of the inputs.
  auto make_chain = [](ClusterIdGenerator* ids) {
    std::vector<AtypicalCluster> micros;
    for (uint32_t k = 1; k <= 6; ++k) {
      micros.push_back(MakeMicro(ids, {{k, 10.0}, {k + 1, 10.0}}, {{5, 20.0}}));
    }
    return micros;
  };
  IntegrationParams params;
  params.delta_sim = 0.45;

  ClusterIdGenerator full_ids(1);
  IntegrationStats full_stats;
  const auto full = IntegrateClusters(make_chain(&full_ids), params, &full_ids,
                                      &full_stats);
  ASSERT_EQ(full.size(), 1u);
  EXPECT_TRUE(full_stats.converged);
  EXPECT_GE(full_stats.fixpoint_rounds, 6u);

  params.max_fixpoint_rounds = 1;
  ClusterIdGenerator part_ids(1);
  IntegrationStats part_stats;
  const auto partial = IntegrateClusters(make_chain(&part_ids), params,
                                         &part_ids, &part_stats);
  EXPECT_FALSE(part_stats.converged);
  EXPECT_EQ(part_stats.fixpoint_rounds, 1u);
  EXPECT_GT(partial.size(), full.size());
  EXPECT_LE(partial.size(), 6u);
  // Still a partition: every input micro id appears exactly once, severity
  // conserved.
  std::set<ClusterId> seen;
  double severity = 0.0;
  for (const auto& c : partial) {
    severity += c.severity();
    for (ClusterId id : c.micro_ids) {
      EXPECT_TRUE(seen.insert(id).second) << "micro " << id << " duplicated";
    }
  }
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_NEAR(severity, 6 * 20.0, 1e-9);
}

TEST(IntegrationTest, DeadlineBudgetReportsTruncation) {
  // An already-elapsed deadline trips before the first round; the output is
  // the untouched input set.
  Rng rng(23);
  ClusterIdGenerator ids(1);
  std::vector<AtypicalCluster> micros = RandomMicros(20, 6, rng, &ids);
  IntegrationParams params;
  params.deadline_seconds = 1e-12;
  IntegrationStats stats;
  const auto out = IntegrateClusters(micros, params, &ids, &stats);
  EXPECT_FALSE(stats.converged);
  EXPECT_EQ(out.size(), micros.size());
  EXPECT_EQ(stats.merges, 0u);
}

TEST(IntegrationTest, DefaultBudgetsAreUnlimited) {
  Rng rng(29);
  ClusterIdGenerator ids(1);
  std::vector<AtypicalCluster> micros = RandomMicros(40, 8, rng, &ids);
  IntegrationStats stats;
  IntegrateClusters(std::move(micros), IntegrationParams{}, &ids, &stats);
  EXPECT_TRUE(stats.converged);
  EXPECT_GT(stats.fixpoint_rounds, 0u);
}

TEST(IntegrationDeathTest, RejectsNonPositiveDeltaSim) {
  ClusterIdGenerator ids(1);
  IntegrationParams params;
  params.delta_sim = 0.0;
  EXPECT_DEATH(IntegrateClusters({}, params, &ids), "Check failed");
}

}  // namespace
}  // namespace atypical
