// ParallelIntegrateClusters must be a bit-identical drop-in for the serial
// Algorithm 3 driver: same partition, same features, same ids, on any input
// order (Property 3 makes the merge algebra order-insensitive; the driver
// additionally pins the serial greedy order, so even the hard partition and
// the id sequence must match).
#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "core/integration.h"
#include "core/parallel_integration.h"
#include "core/similarity.h"
#include "util/random.h"

namespace atypical {
namespace {

std::vector<AtypicalCluster> RandomMicros(int count, uint32_t key_space,
                                          uint64_t seed,
                                          ClusterIdGenerator* ids) {
  Rng rng(seed);
  std::vector<AtypicalCluster> out;
  for (int i = 0; i < count; ++i) {
    AtypicalCluster c;
    c.id = ids->Next();
    c.micro_ids = {c.id};
    c.first_day = static_cast<int>(rng.UniformInt(uint64_t{30}));
    c.last_day = c.first_day;
    c.num_records = 1 + static_cast<int64_t>(rng.UniformInt(uint64_t{40}));
    const int n = 1 + static_cast<int>(rng.UniformInt(uint64_t{8}));
    for (int j = 0; j < n; ++j) {
      const double severity = rng.Uniform(0.5, 15.0);
      c.spatial.Add(static_cast<uint32_t>(rng.UniformInt(uint64_t{key_space})),
                    severity);
      c.temporal.Add(
          static_cast<uint32_t>(rng.UniformInt(uint64_t{key_space})),
          severity);
    }
    out.push_back(std::move(c));
  }
  return out;
}

void ExpectIdentical(const std::vector<AtypicalCluster>& serial,
                     const std::vector<AtypicalCluster>& parallel) {
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    const AtypicalCluster& s = serial[i];
    const AtypicalCluster& p = parallel[i];
    EXPECT_EQ(s.id, p.id) << "cluster " << i;
    EXPECT_EQ(s.spatial, p.spatial) << "cluster " << i;
    EXPECT_EQ(s.temporal, p.temporal) << "cluster " << i;
    EXPECT_EQ(s.key_mode, p.key_mode) << "cluster " << i;
    EXPECT_EQ(s.micro_ids, p.micro_ids) << "cluster " << i;
    EXPECT_EQ(s.left_child, p.left_child) << "cluster " << i;
    EXPECT_EQ(s.right_child, p.right_child) << "cluster " << i;
    EXPECT_EQ(s.first_day, p.first_day) << "cluster " << i;
    EXPECT_EQ(s.last_day, p.last_day) << "cluster " << i;
    EXPECT_EQ(s.num_records, p.num_records) << "cluster " << i;
  }
}

struct EquivalenceCase {
  BalanceFunction g;
  double delta_sim;
  uint64_t seed;
  int num_threads;
  bool use_index;
  bool use_fast_path;
};

class ParallelEquivalenceTest
    : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(ParallelEquivalenceTest, BitIdenticalToSerial) {
  const EquivalenceCase c = GetParam();
  ClusterIdGenerator seed_ids(1);
  const std::vector<AtypicalCluster> micros =
      RandomMicros(120, 16, c.seed, &seed_ids);

  IntegrationParams base;
  base.g = c.g;
  base.delta_sim = c.delta_sim;
  base.use_candidate_index = c.use_index;
  base.use_similarity_fast_path = c.use_fast_path;

  ClusterIdGenerator serial_ids(1000);
  IntegrationStats serial_stats;
  const auto serial = IntegrateClusters(micros, base, &serial_ids,
                                        &serial_stats);

  ParallelIntegrationParams params;
  params.base = base;
  params.num_threads = c.num_threads;
  params.min_shard_candidates = 4;  // exercise the pool, not the inline path
  ClusterIdGenerator parallel_ids(1000);
  IntegrationStats parallel_stats;
  const auto parallel =
      ParallelIntegrateClusters(micros, params, &parallel_ids,
                                &parallel_stats);

  ExpectIdentical(serial, parallel);
  EXPECT_EQ(serial_stats.input_clusters, parallel_stats.input_clusters);
  EXPECT_EQ(serial_stats.output_clusters, parallel_stats.output_clusters);
  EXPECT_EQ(serial_stats.merges, parallel_stats.merges);
  // similarity_checks may legitimately differ: shards past the chosen
  // candidate may have been scanned.  It can never be less than the serial
  // early-exit count.
  EXPECT_GE(parallel_stats.similarity_checks,
            serial_stats.similarity_checks);
  if (!c.use_fast_path) {
    EXPECT_EQ(serial_stats.pruned_scans, 0u);
    EXPECT_EQ(parallel_stats.pruned_scans, 0u);
  }
}

std::vector<EquivalenceCase> MakeCases() {
  std::vector<EquivalenceCase> cases;
  uint64_t seed = 7;
  for (const BalanceFunction g :
       {BalanceFunction::kMax, BalanceFunction::kArithmeticMean,
        BalanceFunction::kHarmonicMean}) {
    for (const double delta_sim : {0.25, 0.5}) {
      for (const int threads : {2, 4}) {
        for (const bool use_index : {true, false}) {
          for (const bool use_fast_path : {true, false}) {
            cases.push_back(EquivalenceCase{g, delta_sim, seed++, threads,
                                            use_index, use_fast_path});
          }
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ParallelEquivalenceTest,
                         ::testing::ValuesIn(MakeCases()));

TEST(ParallelIntegrationTest, PermutedInputStaysEquivalent) {
  // Property 3: the merge algebra is order-insensitive, so for any
  // permutation of the input the parallel driver must still match the
  // serial driver run on that same permutation, and both must conserve the
  // permuted mass exactly.
  ClusterIdGenerator seed_ids(1);
  std::vector<AtypicalCluster> micros = RandomMicros(90, 12, 42, &seed_ids);

  Rng rng(271828);
  for (int round = 0; round < 4; ++round) {
    for (size_t i = micros.size(); i > 1; --i) {
      std::swap(micros[i - 1], micros[rng.UniformInt(uint64_t{i})]);
    }
    ParallelIntegrationParams params;
    params.num_threads = 3;
    params.min_shard_candidates = 4;
    ClusterIdGenerator serial_ids(5000);
    ClusterIdGenerator parallel_ids(5000);
    const auto serial = IntegrateClusters(micros, params.base, &serial_ids);
    const auto parallel =
        ParallelIntegrateClusters(micros, params, &parallel_ids);
    ExpectIdentical(serial, parallel);
  }
}

TEST(ParallelIntegrationTest, ReachesTheFixpoint) {
  ClusterIdGenerator ids(1);
  std::vector<AtypicalCluster> micros = RandomMicros(80, 10, 9, &ids);
  double input_mass = 0.0;
  for (const auto& m : micros) input_mass += m.severity();

  ParallelIntegrationParams params;
  params.num_threads = 4;
  params.min_shard_candidates = 1;
  const auto macros = ParallelIntegrateClusters(micros, params, &ids);

  double output_mass = 0.0;
  for (const auto& macro : macros) output_mass += macro.severity();
  EXPECT_NEAR(output_mass, input_mass, 1e-6);
  for (size_t i = 0; i < macros.size(); ++i) {
    for (size_t j = i + 1; j < macros.size(); ++j) {
      ASSERT_LE(Similarity(macros[i], macros[j], params.base.g),
                params.base.delta_sim);
    }
  }
}

TEST(ParallelIntegrationTest, EdgeCases) {
  ParallelIntegrationParams params;
  params.num_threads = 4;
  ClusterIdGenerator ids(1);

  // Empty input.
  EXPECT_TRUE(ParallelIntegrateClusters({}, params, &ids).empty());

  // Single cluster passes through untouched.
  std::vector<AtypicalCluster> one = RandomMicros(1, 4, 3, &ids);
  const auto single = ParallelIntegrateClusters(one, params, &ids);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0].spatial, one[0].spatial);

  // More threads than clusters: shards are empty but the scan still works.
  std::vector<AtypicalCluster> two = RandomMicros(2, 4, 5, &ids);
  ParallelIntegrationParams wide = params;
  wide.num_threads = 8;
  wide.min_shard_candidates = 0;
  const auto merged = ParallelIntegrateClusters(two, wide, &ids);
  EXPECT_GE(merged.size(), 1u);
  EXPECT_LE(merged.size(), 2u);
}

TEST(ParallelIntegrationTest, SingleThreadFallsBackToSerial) {
  ClusterIdGenerator seed_ids(1);
  const auto micros = RandomMicros(50, 8, 11, &seed_ids);
  ParallelIntegrationParams params;
  params.num_threads = 1;
  ClusterIdGenerator a(100);
  ClusterIdGenerator b(100);
  ExpectIdentical(IntegrateClusters(micros, params.base, &a),
                  ParallelIntegrateClusters(micros, params, &b));
}

}  // namespace
}  // namespace atypical
