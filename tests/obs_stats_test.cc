// Metrics registry + snapshot exporters.  The golden strings here are the
// compatibility contract for `atypical_cli --stats=json` (and the CI schema
// check); change them only together with kStatsSchemaVersion.
//
// The file compiles in both build flavors: under ATYPICAL_NO_STATS only the
// stub-surface and empty-snapshot tests remain, pinning the "empty but still
// valid" contract.
#include "obs/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "obs/snapshot.h"
#include "obs/trace.h"

namespace atypical {
namespace obs {
namespace {

TEST(BucketLayoutTest, UpperBoundsDouble) {
  const BucketLayout latency = BucketLayout::Latency();
  EXPECT_DOUBLE_EQ(latency.UpperBound(0), 1e-6);
  EXPECT_DOUBLE_EQ(latency.UpperBound(1), 2e-6);
  EXPECT_DOUBLE_EQ(latency.UpperBound(20), 1.048576);
  EXPECT_TRUE(std::isinf(latency.UpperBound(latency.num_buckets)));
  const BucketLayout counts = BucketLayout::Counts();
  EXPECT_DOUBLE_EQ(counts.UpperBound(0), 1.0);
  EXPECT_DOUBLE_EQ(counts.UpperBound(10), 1024.0);
}

TEST(BucketLayoutTest, BucketForRoundTrips) {
  const BucketLayout layout = BucketLayout::Latency();
  for (int i = 0; i < layout.num_buckets; ++i) {
    EXPECT_EQ(layout.BucketFor(layout.UpperBound(i)), i) << i;
  }
  EXPECT_EQ(layout.BucketFor(0.0), 0);
  EXPECT_EQ(layout.BucketFor(1.0), 20);  // 2^19 µs < 1s <= 2^20 µs
  EXPECT_EQ(layout.BucketFor(1e12), layout.num_buckets);  // overflow
}

// The empty snapshot must render a valid (empty) JSON document in BOTH
// build flavors — this is what keeps --stats=json working under
// ATYPICAL_NO_STATS.
TEST(SnapshotTest, EmptySnapshotGoldens) {
  const StatsSnapshot snapshot;
  EXPECT_TRUE(snapshot.empty());
  EXPECT_EQ(snapshot.ToText(),
            "== pipeline stats ==\n"
            "(no metrics recorded)\n");
  EXPECT_EQ(snapshot.ToJson(),
            "{\n"
            "  \"schema_version\": 1,\n"
            "  \"counters\": {},\n"
            "  \"gauges\": {},\n"
            "  \"histograms\": {}\n"
            "}\n");
  EXPECT_EQ(snapshot.CounterValue("anything"), 0u);
}

TEST(StubSurfaceTest, RegistryAlwaysHandsOutUsableMetrics) {
  // Identical call-site code must compile and run in both flavors.
  StatsRegistry registry;
  Counter* c = registry.GetCounter("surface.counter");
  Gauge* g = registry.GetGauge("surface.gauge");
  Histogram* h = registry.GetHistogram("surface.seconds");
  ASSERT_NE(c, nullptr);
  ASSERT_NE(g, nullptr);
  ASSERT_NE(h, nullptr);
  c->Increment();
  g->Set(7);
  h->Record(0.25);
  registry.Reset();
  SUCCEED();
}

TEST(TraceSpanTest, StopIsIdempotentAndClockAlwaysRuns) {
  StatsRegistry registry;
  Histogram* h = registry.GetHistogram("span.seconds");
  TraceSpan span(h);
  const double first = span.Stop();
  EXPECT_GE(first, 0.0);
  EXPECT_EQ(span.Stop(), first);  // later calls return the same reading
#if ATYPICAL_STATS_ENABLED
  EXPECT_EQ(h->count(), 1u);  // destructor must not double-record
#endif
  TraceSpan unattached(nullptr);
  EXPECT_GE(unattached.Stop(), 0.0);
}

#if ATYPICAL_STATS_ENABLED

TEST(CounterTest, AddAccumulates) {
  StatsRegistry registry;
  Counter* c = registry.GetCounter("c");
  c->Increment();
  c->Add(41);
  EXPECT_EQ(c->value(), 42u);
}

TEST(GaugeTest, SetAndAddAreSigned) {
  StatsRegistry registry;
  Gauge* g = registry.GetGauge("g");
  g->Set(-5);
  g->Add(2);
  EXPECT_EQ(g->value(), -3);
}

TEST(StatsRegistryTest, GetOrCreateReturnsStablePointers) {
  StatsRegistry registry;
  EXPECT_EQ(registry.GetCounter("a"), registry.GetCounter("a"));
  EXPECT_EQ(registry.GetGauge("a"), registry.GetGauge("a"));
  EXPECT_EQ(registry.GetHistogram("a"), registry.GetHistogram("a"));
  EXPECT_NE(registry.GetCounter("a"), registry.GetCounter("b"));
}

TEST(StatsRegistryDeathTest, HistogramLayoutConflictDies) {
  StatsRegistry registry;
  registry.GetHistogram("h", BucketLayout::Latency());
  EXPECT_DEATH(registry.GetHistogram("h", BucketLayout::Counts()), "layout");
}

TEST(StatsRegistryTest, ResetZeroesButKeepsRegistrations) {
  StatsRegistry registry;
  Counter* c = registry.GetCounter("c");
  Histogram* h = registry.GetHistogram("h");
  c->Add(9);
  h->Record(1.0);
  registry.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_DOUBLE_EQ(h->sum(), 0.0);
  EXPECT_EQ(registry.GetCounter("c"), c);  // same object, still registered
}

TEST(HistogramTest, RecordTracksCountSumMax) {
  StatsRegistry registry;
  Histogram* h = registry.GetHistogram("h");
  h->Record(0.5);
  h->Record(1.5);
  h->Record(0.25);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_DOUBLE_EQ(h->sum(), 2.25);
  EXPECT_DOUBLE_EQ(h->max(), 1.5);
}

TEST(HistogramTest, QuantileInterpolatesWithinBucket) {
  StatsRegistry registry;
  Histogram* h = registry.GetHistogram("h");
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 0.0);  // no samples
  h->Record(1.0);  // lands in bucket 20: (0.524288, 1.048576]
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 0.786432);
  EXPECT_DOUBLE_EQ(h->Quantile(0.9), 0.9961472);
  EXPECT_DOUBLE_EQ(h->Quantile(0.99), 1.04333312);
}

TEST(HistogramTest, OverflowBucketReportsObservedMax) {
  StatsRegistry registry;
  Histogram* h = registry.GetHistogram("h");
  h->Record(1e9);  // past the last Latency() bound (~537s)
  EXPECT_EQ(h->bucket_count(h->layout().num_buckets), 1u);
  EXPECT_DOUBLE_EQ(h->Quantile(0.99), 1e9);
}

StatsSnapshot DemoSnapshot() {
  StatsRegistry registry;
  registry.GetCounter("demo.events")->Add(3);
  registry.GetGauge("demo.depth")->Set(-2);
  registry.GetHistogram("demo.seconds")->Record(1.0);
  return registry.Snapshot();
}

TEST(SnapshotTest, TextExportGolden) {
  EXPECT_EQ(DemoSnapshot().ToText(),
            "== pipeline stats ==\n"
            "counters:\n"
            "  demo.events  3\n"
            "gauges:\n"
            "  demo.depth   -2\n"
            "histograms:\n"
            "  demo.seconds count=1 sum=1 p50=0.786432 p90=0.9961472 "
            "p99=1.04333312 max=1\n");
}

TEST(SnapshotTest, JsonExportGolden) {
  EXPECT_EQ(DemoSnapshot().ToJson(),
            "{\n"
            "  \"schema_version\": 1,\n"
            "  \"counters\": {\n"
            "    \"demo.events\": 3\n"
            "  },\n"
            "  \"gauges\": {\n"
            "    \"demo.depth\": -2\n"
            "  },\n"
            "  \"histograms\": {\n"
            "    \"demo.seconds\": {\"count\": 1, \"sum\": 1, \"max\": 1, "
            "\"p50\": 0.786432, \"p90\": 0.9961472, \"p99\": 1.04333312, "
            "\"buckets\": [{\"le\": 1.048576, \"count\": 1}]}\n"
            "  }\n"
            "}\n");
}

TEST(SnapshotTest, SortedByNameAndOnlyPopulatedBuckets) {
  StatsRegistry registry;
  registry.GetCounter("z.last")->Increment();
  registry.GetCounter("a.first")->Increment();
  Histogram* h = registry.GetHistogram("h");
  h->Record(1e-6);  // bucket 0
  h->Record(1.0);   // bucket 20
  const StatsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].first, "a.first");
  EXPECT_EQ(snapshot.counters[1].first, "z.last");
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  ASSERT_EQ(snapshot.histograms[0].buckets.size(), 2u);  // empty ones elided
  EXPECT_DOUBLE_EQ(snapshot.histograms[0].buckets[0].upper_bound, 1e-6);
  EXPECT_DOUBLE_EQ(snapshot.histograms[0].buckets[1].upper_bound, 1.048576);
  EXPECT_EQ(snapshot.CounterValue("z.last"), 1u);
}

TEST(SnapshotTest, JsonEscapesMetricNames) {
  StatsRegistry registry;
  registry.GetCounter("weird\"name\\with\nescapes")->Increment();
  const std::string json = registry.Snapshot().ToJson();
  EXPECT_NE(json.find("\"weird\\\"name\\\\with\\nescapes\": 1"),
            std::string::npos);
}

TEST(ProcessRegistryTest, IsASingleton) {
  EXPECT_EQ(Registry(), Registry());
  EXPECT_NE(Registry(), nullptr);
}

#else  // !ATYPICAL_STATS_ENABLED

TEST(NoStatsBuildTest, EverythingReadsZeroAndSnapshotsEmpty) {
  StatsRegistry registry;
  Counter* c = registry.GetCounter("c");
  c->Add(100);
  EXPECT_EQ(c->value(), 0u);  // writes vanish
  Histogram* h = registry.GetHistogram("h");
  h->Record(1.0);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_TRUE(registry.Snapshot().empty());
  EXPECT_TRUE(Registry()->Snapshot().empty());
}

#endif  // ATYPICAL_STATS_ENABLED

}  // namespace
}  // namespace obs
}  // namespace atypical
