#include "analytics/drilldown.h"

#include <gtest/gtest.h>

#include "analytics/ground_truth.h"
#include "analytics/report.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace atypical {
namespace analytics {
namespace {

class DrilldownTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ctx_ = BuildContext(WorkloadScale::kTiny, 2, DefaultForestParams(), 91)
               .release();
    const QueryResult all = ctx_->MakeEngine(DefaultEngineOptions())
                                .Run(ctx_->WholeAreaQuery(14),
                                     QueryStrategy::kAll);
    result_ = new QueryResult(all);
    // Pick the biggest merged cluster to drill into.
    const AtypicalCluster* best = nullptr;
    for (const AtypicalCluster& c : result_->clusters) {
      if (c.num_micros() > 1 &&
          (best == nullptr || c.severity() > best->severity())) {
        best = &c;
      }
    }
    CHECK(best != nullptr);
    big_ = best;
  }
  static void TearDownTestSuite() {
    delete result_;
    delete ctx_;
  }

  static ExperimentContext* ctx_;
  static QueryResult* result_;
  static const AtypicalCluster* big_;
};

ExperimentContext* DrilldownTest::ctx_ = nullptr;
QueryResult* DrilldownTest::result_ = nullptr;
const AtypicalCluster* DrilldownTest::big_ = nullptr;

TEST_F(DrilldownTest, LeavesRecoverTheWholeMacro) {
  const std::vector<DrilldownLeaf> leaves = ResolveLeaves(*big_, *ctx_->forest);
  ASSERT_EQ(leaves.size(), big_->micro_ids.size());
  double mass = 0.0;
  double share = 0.0;
  for (const DrilldownLeaf& leaf : leaves) {
    ASSERT_NE(leaf.micro, nullptr);
    mass += leaf.severity;
    share += leaf.share;
    EXPECT_GE(leaf.day, big_->first_day);
    EXPECT_LE(leaf.day, big_->last_day);
  }
  EXPECT_NEAR(mass, big_->severity(), 1e-6);
  EXPECT_NEAR(share, 1.0, 1e-9);
}

TEST_F(DrilldownTest, LeavesOrderedByDay) {
  const auto leaves = ResolveLeaves(*big_, *ctx_->forest);
  for (size_t i = 1; i < leaves.size(); ++i) {
    EXPECT_LE(leaves[i - 1].day, leaves[i].day);
  }
}

TEST_F(DrilldownTest, DailyProfileSumsToSeverity) {
  const std::vector<double> profile =
      DailySeverityProfile(*big_, *ctx_->forest);
  EXPECT_EQ(profile.size(),
            static_cast<size_t>(big_->last_day - big_->first_day + 1));
  double total = 0.0;
  for (double v : profile) total += v;
  EXPECT_NEAR(total, big_->severity(), 1e-6);
  // The span boundaries carry actual mass (first/last day are tight).
  EXPECT_GT(profile.front(), 0.0);
  EXPECT_GT(profile.back(), 0.0);
}

TEST_F(DrilldownTest, ReportAnswersExampleOneQuestions) {
  const ClusterReport report =
      BuildClusterReport(*big_, ctx_->network(), ctx_->time_grid());
  EXPECT_EQ(report.id, big_->id);
  EXPECT_DOUBLE_EQ(report.severity, big_->severity());
  ASSERT_FALSE(report.top_sensors.empty());
  // Top sensor is the SF maximum.
  EXPECT_EQ(report.top_sensors[0].key, big_->spatial.Top().key);
  // Onset is at or before the peak.
  EXPECT_LE(report.onset_minute_of_day, report.peak_minute_of_day);
  EXPECT_GT(report.peak_share, 0.0);
  EXPECT_LE(report.peak_share, 1.0);
  EXPECT_FALSE(report.summary.empty());
}

TEST_F(DrilldownTest, ReportTopSensorsRespectLimit) {
  ReportOptions options;
  options.top_sensors = 2;
  const ClusterReport report = BuildClusterReport(
      *big_, ctx_->network(), ctx_->time_grid(), options);
  EXPECT_LE(report.top_sensors.size(), 2u);
}

TEST_F(DrilldownTest, RenderTopClustersTable) {
  const Table table = RenderTopClusters(result_->clusters, ctx_->network(),
                                        ctx_->time_grid(), 5);
  EXPECT_LE(table.num_rows(), 5u);
  EXPECT_GT(table.num_rows(), 0u);
  // Severity column is sorted descending.
  double prev = 1e18;
  for (const auto& row : table.rows()) {
    const double severity = ParseDouble(row[1], -1.0);
    EXPECT_LE(severity, prev);
    prev = severity;
  }
}

TEST_F(DrilldownTest, ReportDiesOnAbsoluteKeys) {
  AtypicalCluster absolute;
  absolute.key_mode = TemporalKeyMode::kAbsolute;
  absolute.spatial.Add(0, 5.0);
  absolute.temporal.Add(100, 5.0);
  EXPECT_DEATH(BuildClusterReport(absolute, ctx_->network(),
                                  ctx_->time_grid()),
               "times of day");
}

TEST_F(DrilldownTest, UnknownMicroIdsAreSkipped) {
  AtypicalCluster synthetic = *big_;
  synthetic.micro_ids.push_back(999999999);
  const auto leaves = ResolveLeaves(synthetic, *ctx_->forest);
  EXPECT_EQ(leaves.size(), big_->micro_ids.size());
}

}  // namespace
}  // namespace analytics
}  // namespace atypical
