#include "ext/detector.h"

#include <gtest/gtest.h>

#include "core/event_retrieval.h"
#include "gen/workload.h"

namespace atypical {
namespace ext {
namespace {

class DetectorTest : public ::testing::Test {
 protected:
  DetectorTest() : workload_(MakeWorkload(WorkloadScale::kTiny, 71)) {
    dataset_ = workload_->generator->GenerateMonth(0);
    profile_ = std::make_unique<SpeedProfile>(SpeedProfile::Learn(dataset_));
  }

  std::unique_ptr<Workload> workload_;
  Dataset dataset_;
  std::unique_ptr<SpeedProfile> profile_;
};

TEST_F(DetectorTest, LearnsPlausibleReferenceSpeeds) {
  for (int s = 0; s < profile_->num_sensors(); ++s) {
    EXPECT_GT(profile_->reference_mph(s), 35.0) << "sensor " << s;
    EXPECT_LT(profile_->reference_mph(s), 95.0) << "sensor " << s;
  }
}

TEST_F(DetectorTest, DetectionAgreesWithGeneratorLabels) {
  DetectionStats stats;
  const std::vector<AtypicalRecord> detected =
      DetectAtypical(dataset_, *profile_, DetectorParams{}, &stats);
  EXPECT_EQ(stats.readings_scanned, dataset_.num_readings());
  EXPECT_EQ(stats.records_emitted, static_cast<int64_t>(detected.size()));
  ASSERT_GT(detected.size(), 0u);

  const DetectionQuality q = EvaluateDetection(dataset_, detected);
  // The detector sees only speeds (with reporting noise); congested windows
  // have dramatically lower speeds, so both precision and recall must be
  // high — but not perfect (partial-window congestion is ambiguous).
  EXPECT_GT(q.precision, 0.8);
  EXPECT_GT(q.recall, 0.6);
}

TEST_F(DetectorTest, DetectedSeveritiesAreBounded) {
  const std::vector<AtypicalRecord> detected =
      DetectAtypical(dataset_, *profile_);
  const float cap =
      static_cast<float>(dataset_.meta().time_grid.window_minutes());
  for (const AtypicalRecord& r : detected) {
    EXPECT_GT(r.severity_minutes, 0.0f);
    EXPECT_LE(r.severity_minutes, cap);
    EXPECT_EQ(r.true_event, kNoEvent);  // detector must not copy labels
  }
}

TEST_F(DetectorTest, StricterThresholdDetectsLess) {
  DetectorParams loose;
  loose.congestion_fraction = 0.6;
  DetectorParams strict;
  strict.congestion_fraction = 0.3;
  const auto many = DetectAtypical(dataset_, *profile_, loose);
  const auto few = DetectAtypical(dataset_, *profile_, strict);
  EXPECT_LT(few.size(), many.size());
}

TEST_F(DetectorTest, DetectedRecordsDriveTheFullPipeline) {
  // End-to-end without labels: detect -> cluster; the big recurring events
  // must still surface.
  const std::vector<AtypicalRecord> detected =
      DetectAtypical(dataset_, *profile_);
  ClusterIdGenerator ids(1);
  RetrievalParams params;
  const auto micros =
      RetrieveMicroClusters(detected, *workload_->sensors,
                            dataset_.meta().time_grid, params, &ids);
  EXPECT_GT(micros.size(), 5u);
  double max_severity = 0.0;
  for (const auto& c : micros) max_severity = std::max(max_severity, c.severity());
  EXPECT_GT(max_severity, 100.0);
}

TEST_F(DetectorTest, EmptyDatasetYieldsNothing) {
  const Dataset empty(dataset_.meta(), {});
  EXPECT_TRUE(DetectAtypical(empty, *profile_).empty());
  const DetectionQuality q = EvaluateDetection(empty, {});
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
}

TEST_F(DetectorTest, PercentileBoundsChecked) {
  EXPECT_DEATH(SpeedProfile::Learn(dataset_, 0.0), "Check failed");
  EXPECT_DEATH(SpeedProfile::Learn(dataset_, 1.5), "Check failed");
}

}  // namespace
}  // namespace ext
}  // namespace atypical
