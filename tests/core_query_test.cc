// Analytical query processing: All / Pru / Gui semantics on a small
// end-to-end workload.
#include "core/query.h"

#include <set>

#include <gtest/gtest.h>

#include "analytics/ground_truth.h"
#include "analytics/report.h"

namespace atypical {
namespace {

class QueryEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ctx_ = analytics::BuildContext(WorkloadScale::kTiny, 3,
                                   analytics::DefaultForestParams(), 29)
               .release();
  }
  static void TearDownTestSuite() {
    delete ctx_;
    ctx_ = nullptr;
  }

  QueryEngine Engine(QueryEngineOptions options = {}) {
    options.integration = ctx_->forest_params.integration;
    return ctx_->MakeEngine(options);
  }

  static analytics::ExperimentContext* ctx_;
};

analytics::ExperimentContext* QueryEngineTest::ctx_ = nullptr;

TEST_F(QueryEngineTest, StrategyNames) {
  EXPECT_STREQ(QueryStrategyName(QueryStrategy::kAll), "All");
  EXPECT_STREQ(QueryStrategyName(QueryStrategy::kPrune), "Pru");
  EXPECT_STREQ(QueryStrategyName(QueryStrategy::kGuided), "Gui");
}

TEST_F(QueryEngineTest, AllIntegratesEveryMicroInRange) {
  const AnalyticalQuery query = ctx_->WholeAreaQuery(7);
  const QueryResult result = Engine().Run(query, QueryStrategy::kAll);
  EXPECT_EQ(result.cost.input_micro_clusters,
            result.cost.micro_clusters_in_range);
  EXPECT_GT(result.cost.input_micro_clusters, 0u);
  EXPECT_FALSE(result.clusters.empty());
  // The returned macros partition the in-range micros.
  std::set<ClusterId> seen;
  size_t micro_count = 0;
  for (const AtypicalCluster& c : result.clusters) {
    for (ClusterId id : c.micro_ids) {
      EXPECT_TRUE(seen.insert(id).second);
      ++micro_count;
    }
  }
  EXPECT_EQ(micro_count, result.cost.input_micro_clusters);
}

TEST_F(QueryEngineTest, ThresholdMatchesFormula) {
  const AnalyticalQuery query = ctx_->WholeAreaQuery(14);
  const QueryResult result = Engine().Run(query, QueryStrategy::kAll);
  EXPECT_EQ(result.num_sensors_in_w, ctx_->network().num_sensors());
  EXPECT_DOUBLE_EQ(result.threshold,
                   0.05 * 14 * result.num_sensors_in_w);
  EXPECT_DOUBLE_EQ(Engine().ThresholdFor(query), result.threshold);
}

TEST_F(QueryEngineTest, PruneOnlyIntegratesSignificantMicros) {
  const AnalyticalQuery query = ctx_->WholeAreaQuery(7);
  const QueryResult all = Engine().Run(query, QueryStrategy::kAll);
  const QueryResult pru = Engine().Run(query, QueryStrategy::kPrune);
  EXPECT_LT(pru.cost.input_micro_clusters, all.cost.input_micro_clusters);
  // Every micro Pru integrated is individually significant.
  const auto severities = ctx_->forest->MicroSeverities(query.days);
  for (const AtypicalCluster& c : pru.clusters) {
    for (ClusterId id : c.micro_ids) {
      EXPECT_GT(severities.at(id), pru.threshold);
    }
  }
}

TEST_F(QueryEngineTest, GuidedPrunesButKeepsSignificantMass) {
  const AnalyticalQuery query = ctx_->WholeAreaQuery(7);
  const QueryResult all = Engine().Run(query, QueryStrategy::kAll);
  const QueryResult gui = Engine().Run(query, QueryStrategy::kGuided);
  EXPECT_LE(gui.cost.input_micro_clusters, all.cost.input_micro_clusters);
  EXPECT_GT(gui.cost.regions_checked, 0u);
  EXPECT_GT(gui.cost.red_zones, 0u);
  EXPECT_LE(gui.cost.red_zones, gui.cost.regions_checked);

  // No false negatives: every significant cluster found by All has a
  // counterpart in Gui carrying at least its significant micro set's mass.
  const analytics::GroundTruth gt = analytics::ComputeGroundTruth(all);
  const auto severities = ctx_->forest->MicroSeverities(query.days);
  std::set<ClusterId> gui_micros;
  for (const AtypicalCluster& c : gui.clusters) {
    gui_micros.insert(c.micro_ids.begin(), c.micro_ids.end());
  }
  for (const AtypicalCluster& g : gt.significant) {
    double mass = 0.0;
    double kept = 0.0;
    for (ClusterId id : g.micro_ids) {
      mass += severities.at(id);
      if (gui_micros.contains(id)) kept += severities.at(id);
    }
    EXPECT_GT(kept, 0.9 * mass) << "cluster " << g.id;
  }
}

TEST_F(QueryEngineTest, PostCheckRemovesTrivialClusters) {
  const AnalyticalQuery query = ctx_->WholeAreaQuery(7);
  QueryEngineOptions options;
  options.post_check_significance = true;
  const QueryResult checked = Engine(options).Run(query, QueryStrategy::kAll);
  for (const AtypicalCluster& c : checked.clusters) {
    EXPECT_GT(c.severity(), checked.threshold);
  }
  const QueryResult unchecked = Engine().Run(query, QueryStrategy::kAll);
  EXPECT_LE(checked.clusters.size(), unchecked.clusters.size());
  // With the post-check, Gui achieves 100% precision (§V.B).
  const QueryResult gui = Engine(options).Run(query, QueryStrategy::kGuided);
  for (const AtypicalCluster& c : gui.clusters) {
    EXPECT_GT(c.severity(), gui.threshold);
  }
}

TEST_F(QueryEngineTest, SpatialRestrictionFiltersClusters) {
  // Query only the left half of the area.
  AnalyticalQuery query = ctx_->WholeAreaQuery(7);
  const GeoRect bounds = query.area;
  query.area = GeoRect{bounds.min_x, bounds.min_y,
                       (bounds.min_x + bounds.max_x) / 2, bounds.max_y};
  const QueryResult half = Engine().Run(query, QueryStrategy::kAll);
  const QueryResult whole =
      Engine().Run(ctx_->WholeAreaQuery(7), QueryStrategy::kAll);
  EXPECT_LT(half.num_sensors_in_w, whole.num_sensors_in_w);
  EXPECT_LE(half.cost.input_micro_clusters,
            whole.cost.input_micro_clusters);
  // Every returned cluster touches the query area.
  const std::vector<SensorId> in_w = ctx_->network().SensorsInRect(query.area);
  const std::set<SensorId> w_set(in_w.begin(), in_w.end());
  for (const AtypicalCluster& c : half.clusters) {
    bool touches = false;
    for (const auto& e : c.spatial.entries()) {
      if (w_set.contains(e.key)) {
        touches = true;
        break;
      }
    }
    EXPECT_TRUE(touches) << "cluster " << c.id;
  }
}

TEST_F(QueryEngineTest, TimeRestrictionFiltersClusters) {
  const QueryResult one_day =
      Engine().Run(ctx_->WholeAreaQuery(1), QueryStrategy::kAll);
  const QueryResult week =
      Engine().Run(ctx_->WholeAreaQuery(7), QueryStrategy::kAll);
  EXPECT_LT(one_day.cost.micro_clusters_in_range,
            week.cost.micro_clusters_in_range);
  for (const AtypicalCluster& c : one_day.clusters) {
    EXPECT_EQ(c.first_day, 0);
    EXPECT_EQ(c.last_day, 0);
  }
}

TEST_F(QueryEngineTest, EmptyRangeYieldsEmptyResult) {
  AnalyticalQuery query = ctx_->WholeAreaQuery(7);
  query.days = DayRange{500, 510};
  const QueryResult result = Engine().Run(query, QueryStrategy::kAll);
  EXPECT_TRUE(result.clusters.empty());
  EXPECT_EQ(result.cost.input_micro_clusters, 0u);
}

TEST_F(QueryEngineTest, ResultsUseTimeOfDayKeys) {
  const QueryResult result =
      Engine().Run(ctx_->WholeAreaQuery(14), QueryStrategy::kAll);
  for (const AtypicalCluster& c : result.clusters) {
    EXPECT_TRUE(c.key_mode == TemporalKeyMode::kTimeOfDay);
    for (const auto& e : c.temporal.entries()) {
      EXPECT_LT(e.key, static_cast<uint32_t>(
                           ctx_->time_grid().WindowsPerDay()));
    }
  }
}

TEST_F(QueryEngineTest, CostsAreInternallyConsistent) {
  const QueryResult result =
      Engine().Run(ctx_->WholeAreaQuery(14), QueryStrategy::kGuided);
  EXPECT_EQ(result.cost.integration.input_clusters,
            result.cost.input_micro_clusters);
  EXPECT_EQ(result.cost.integration.output_clusters, result.clusters.size());
  EXPECT_GE(result.cost.seconds, result.cost.integration.seconds);
}

// Regression: the engine used to demand a mutable AtypicalForest* (it drew
// result ids from the forest's shared generator), which made it impossible
// to query a frozen snapshot.  An engine over a const forest must compile
// and answer identically to one over the mutable original — including
// result macro ids, which now come from the query-local kQueryMacroIdBase
// generator instead of shared mutable state.
TEST_F(QueryEngineTest, RunsAgainstConstForest) {
  const AtypicalForest& frozen = *ctx_->forest;  // const view, same forest
  const QueryEngineOptions options = analytics::DefaultEngineOptions();
  const QueryEngine const_engine(&ctx_->network(), &ctx_->regions(), &frozen,
                                 &ctx_->atypical_cube, options);
  const AnalyticalQuery query = ctx_->WholeAreaQuery(14);
  for (const QueryStrategy strategy :
       {QueryStrategy::kAll, QueryStrategy::kPrune, QueryStrategy::kGuided}) {
    const QueryResult from_const = const_engine.Run(query, strategy);
    const QueryResult from_mutable = ctx_->MakeEngine(options).Run(query, strategy);
    ASSERT_EQ(from_const.clusters.size(), from_mutable.clusters.size());
    for (size_t i = 0; i < from_const.clusters.size(); ++i) {
      EXPECT_EQ(from_const.clusters[i].id, from_mutable.clusters[i].id);
      EXPECT_EQ(from_const.clusters[i].micro_ids,
                from_mutable.clusters[i].micro_ids);
      EXPECT_TRUE(from_const.clusters[i].spatial ==
                  from_mutable.clusters[i].spatial);
    }
  }
}

// Result ids are query-local: running other queries in between (which used
// to advance the forest's shared generator) must not change a query's ids.
TEST_F(QueryEngineTest, ResultIdsIndependentOfPriorQueries) {
  const AnalyticalQuery query = ctx_->WholeAreaQuery(14);
  const QueryResult first = Engine().Run(query, QueryStrategy::kAll);
  for (int day = 0; day < 5; ++day) {
    AnalyticalQuery other = query;
    other.days = DayRange{day, day + 3};
    Engine().Run(other, QueryStrategy::kAll);
  }
  const QueryResult second = Engine().Run(query, QueryStrategy::kAll);
  ASSERT_EQ(first.clusters.size(), second.clusters.size());
  for (size_t i = 0; i < first.clusters.size(); ++i) {
    EXPECT_EQ(first.clusters[i].id, second.clusters[i].id);
    if (first.clusters[i].num_micros() > 1) {
      EXPECT_GE(first.clusters[i].id, kQueryMacroIdBase);
    }
  }
}

}  // namespace
}  // namespace atypical
