// The similarity fast path (DESIGN §11) must be invisible in results: with
// use_similarity_fast_path on or off, integration must produce bit-identical
// output — same partition, same features, same ids — for every balance
// function, threshold and input permutation.  This file property-tests that
// contract end to end, and unit-tests the candidate-index compaction that
// rides the same merge path.
#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/integration.h"
#include "core/integration_internal.h"
#include "core/parallel_integration.h"
#include "core/similarity.h"
#include "util/random.h"

namespace atypical {
namespace {

std::vector<AtypicalCluster> RandomMicros(int count, uint32_t key_space,
                                          int keys_per_cluster, uint64_t seed,
                                          ClusterIdGenerator* ids) {
  Rng rng(seed);
  std::vector<AtypicalCluster> out;
  for (int i = 0; i < count; ++i) {
    AtypicalCluster c;
    c.id = ids->Next();
    c.micro_ids = {c.id};
    c.first_day = static_cast<int>(rng.UniformInt(uint64_t{30}));
    c.last_day = c.first_day;
    c.num_records = 1 + static_cast<int64_t>(rng.UniformInt(uint64_t{40}));
    for (int j = 0; j < keys_per_cluster; ++j) {
      const double severity = rng.Uniform(0.5, 15.0);
      c.spatial.Add(static_cast<uint32_t>(rng.UniformInt(uint64_t{key_space})),
                    severity);
      c.temporal.Add(
          static_cast<uint32_t>(rng.UniformInt(uint64_t{key_space})),
          severity);
    }
    out.push_back(std::move(c));
  }
  return out;
}

void ExpectIdentical(const std::vector<AtypicalCluster>& a,
                     const std::vector<AtypicalCluster>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << "cluster " << i;
    EXPECT_EQ(a[i].spatial, b[i].spatial) << "cluster " << i;
    EXPECT_EQ(a[i].temporal, b[i].temporal) << "cluster " << i;
    EXPECT_EQ(a[i].key_mode, b[i].key_mode) << "cluster " << i;
    EXPECT_EQ(a[i].micro_ids, b[i].micro_ids) << "cluster " << i;
    EXPECT_EQ(a[i].left_child, b[i].left_child) << "cluster " << i;
    EXPECT_EQ(a[i].right_child, b[i].right_child) << "cluster " << i;
    EXPECT_EQ(a[i].first_day, b[i].first_day) << "cluster " << i;
    EXPECT_EQ(a[i].last_day, b[i].last_day) << "cluster " << i;
    EXPECT_EQ(a[i].num_records, b[i].num_records) << "cluster " << i;
  }
}

std::pair<std::vector<AtypicalCluster>, std::vector<AtypicalCluster>>
RunFastAndExact(const std::vector<AtypicalCluster>& micros,
                IntegrationParams params,
                IntegrationStats* fast_stats = nullptr,
                IntegrationStats* exact_stats = nullptr) {
  params.use_similarity_fast_path = true;
  ClusterIdGenerator fast_ids(100000);
  auto fast = IntegrateClusters(micros, params, &fast_ids, fast_stats);
  params.use_similarity_fast_path = false;
  ClusterIdGenerator exact_ids(100000);
  auto exact = IntegrateClusters(micros, params, &exact_ids, exact_stats);
  return {std::move(fast), std::move(exact)};
}

TEST(SimilarityFastPathPropertyTest, BitIdenticalAcrossFunctionsAndDeltas) {
  for (const BalanceFunction g :
       {BalanceFunction::kMax, BalanceFunction::kMin,
        BalanceFunction::kArithmeticMean, BalanceFunction::kGeometricMean,
        BalanceFunction::kHarmonicMean}) {
    for (const double delta_sim : {0.2, 0.45, 0.7}) {
      for (uint64_t seed = 1; seed <= 2; ++seed) {
        ClusterIdGenerator ids(1);
        const std::vector<AtypicalCluster> micros =
            RandomMicros(80, 12, 5, seed, &ids);
        IntegrationParams params;
        params.g = g;
        params.delta_sim = delta_sim;
        IntegrationStats fast_stats;
        IntegrationStats exact_stats;
        const auto [fast, exact] =
            RunFastAndExact(micros, params, &fast_stats, &exact_stats);
        SCOPED_TRACE(std::string("g=") + BalanceFunctionName(g));
        ExpectIdentical(fast, exact);
        // Identical verdicts imply identical merge sequences, so the fast
        // path's counters must partition the exact path's scan count.
        EXPECT_EQ(fast_stats.exact_scans + fast_stats.pruned_scans,
                  exact_stats.exact_scans)
            << "delta=" << delta_sim << " seed=" << seed;
      }
    }
  }
}

TEST(SimilarityFastPathPropertyTest, BitIdenticalUnderInputPermutations) {
  // Hard clustering is order-dependent, so permuting the input changes the
  // output — but fast on/off must stay identical for each permutation.
  ClusterIdGenerator ids(1);
  std::vector<AtypicalCluster> micros = RandomMicros(70, 10, 5, 99, &ids);
  Rng rng(314159);
  for (int round = 0; round < 4; ++round) {
    for (size_t i = micros.size(); i > 1; --i) {
      std::swap(micros[i - 1], micros[rng.UniformInt(uint64_t{i})]);
    }
    IntegrationParams params;
    params.delta_sim = 0.45;
    const auto [fast, exact] = RunFastAndExact(micros, params);
    ExpectIdentical(fast, exact);
  }
}

TEST(SimilarityFastPathPropertyTest, BitIdenticalWithoutCandidateIndex) {
  ClusterIdGenerator ids(1);
  const std::vector<AtypicalCluster> micros = RandomMicros(60, 8, 5, 7, &ids);
  IntegrationParams params;
  params.use_candidate_index = false;
  params.delta_sim = 0.4;
  const auto [fast, exact] = RunFastAndExact(micros, params);
  ExpectIdentical(fast, exact);
}

TEST(SimilarityFastPathPropertyTest, ParallelDriverBitIdentical) {
  ClusterIdGenerator ids(1);
  const std::vector<AtypicalCluster> micros = RandomMicros(100, 12, 5, 5, &ids);
  for (const double delta_sim : {0.3, 0.6}) {
    ParallelIntegrationParams params;
    params.base.delta_sim = delta_sim;
    params.num_threads = 3;
    params.min_shard_candidates = 4;

    params.base.use_similarity_fast_path = true;
    ClusterIdGenerator fast_ids(100000);
    IntegrationStats fast_stats;
    const auto fast =
        ParallelIntegrateClusters(micros, params, &fast_ids, &fast_stats);

    params.base.use_similarity_fast_path = false;
    ClusterIdGenerator exact_ids(100000);
    const auto exact =
        ParallelIntegrateClusters(micros, params, &exact_ids);

    ExpectIdentical(fast, exact);
  }
}

TEST(SimilarityFastPathPropertyTest, FastPathPrunesTheScanBoundSeedWorkload) {
  // The acceptance bar: on the bench_integration workload (dense overlap,
  // key space 48, 24 adds per feature, δsim 0.7 — the scan-bound regime
  // where merges are rare and candidate scans dominate) the fast path must
  // answer at least half of all evaluations from the bound alone.
  ClusterIdGenerator ids(1);
  const std::vector<AtypicalCluster> micros =
      RandomMicros(300, 48, 24, 2024, &ids);
  IntegrationParams params;
  params.delta_sim = 0.7;
  IntegrationStats fast_stats;
  IntegrationStats exact_stats;
  const auto [fast, exact] =
      RunFastAndExact(micros, params, &fast_stats, &exact_stats);
  ExpectIdentical(fast, exact);
  ASSERT_GT(exact_stats.exact_scans, 0u);
  EXPECT_LE(2 * fast_stats.exact_scans, exact_stats.exact_scans)
      << "pruned=" << fast_stats.pruned_scans
      << " exact=" << fast_stats.exact_scans;
}

TEST(SimilarityFastPathPropertyTest, CollapseRegimeOnlyScansTrueMerges) {
  // Below this population's snowball point (δsim 0.6) the run collapses to
  // a single macro-cluster and n-1 verdicts are true merges — exact scans
  // the bound can never skip, since an upper bound only proves "does not
  // exceed".  With this seed the bound prunes every failing verdict, so the
  // fast path's exact-scan count sits exactly on that merge floor.
  ClusterIdGenerator ids(1);
  const std::vector<AtypicalCluster> micros =
      RandomMicros(300, 48, 24, 2024, &ids);
  IntegrationParams params;
  params.delta_sim = 0.6;
  IntegrationStats fast_stats;
  IntegrationStats exact_stats;
  const auto [fast, exact] =
      RunFastAndExact(micros, params, &fast_stats, &exact_stats);
  ExpectIdentical(fast, exact);
  ASSERT_EQ(fast.size(), 1u);
  EXPECT_EQ(fast_stats.exact_scans,
            static_cast<uint64_t>(fast_stats.merges));
  EXPECT_GT(fast_stats.pruned_scans, 0u);
}

// ---- candidate-index compaction ----

using integration_internal::CandidateIndex;

TEST(CandidateIndexTest, CompactionPreservesCandidateSets) {
  // 16 clusters, 4 spatial + 4 temporal keys each, heavy key sharing.
  ClusterIdGenerator ids(1);
  std::vector<AtypicalCluster> clusters;
  for (uint32_t i = 0; i < 16; ++i) {
    AtypicalCluster c;
    c.id = ids.Next();
    for (uint32_t j = 0; j < 4; ++j) {
      c.spatial.Add((i + j) % 8, 1.0);
      c.temporal.Add((i + 2 * j) % 8, 1.0);
    }
    clusters.push_back(std::move(c));
  }
  std::vector<bool> alive(clusters.size(), true);
  CandidateIndex index(clusters.size());
  for (uint32_t i = 0; i < clusters.size(); ++i) index.AddKeys(clusters[i], i);
  index.SealBaseline();
  // Below the watermark nothing compacts.
  EXPECT_FALSE(index.MaybeCompact(alive));

  // Simulate a run of merges: slot 0 absorbs slots 7..15, whose keys are
  // re-posted under slot 0 and whose own postings go stale.
  for (uint32_t j = 7; j < 16; ++j) {
    index.AddKeys(clusters[j], 0);
    alive[j] = false;
  }
  std::vector<uint32_t> before;
  index.Candidates(clusters[0], 0, alive, &before);

  // 128 baseline postings + 72 re-posts exceeds the 1.5× watermark (192).
  EXPECT_TRUE(index.MaybeCompact(alive));
  std::vector<uint32_t> after;
  index.Candidates(clusters[0], 0, alive, &after);
  EXPECT_EQ(before, after);
  for (uint32_t slot : after) {
    EXPECT_TRUE(alive[slot]);
    EXPECT_NE(slot, 0u);
  }
  // Freshly re-armed at 2× the surviving size: no immediate re-trigger.
  EXPECT_FALSE(index.MaybeCompact(alive));
}

TEST(CandidateIndexTest, UnsealedIndexNeverCompacts) {
  AtypicalCluster c;
  for (uint32_t k = 0; k < 40; ++k) c.spatial.Add(k, 1.0);
  std::vector<bool> alive(4, true);
  CandidateIndex index(4);
  for (uint32_t i = 0; i < 4; ++i) index.AddKeys(c, i);
  EXPECT_FALSE(index.MaybeCompact(alive));  // no SealBaseline() call
}

TEST(CandidateIndexTest, IntegrationRunCompactsOnCollapsingWorkload) {
  // Identical micros all collapse into one macro: every merge re-posts a
  // full cluster's keys, crossing the 1.5× watermark mid-run.  Output must
  // match the naive (index-free) driver exactly.
  ClusterIdGenerator ids(1);
  std::vector<AtypicalCluster> micros;
  for (int i = 0; i < 100; ++i) {
    AtypicalCluster c;
    c.id = ids.Next();
    c.micro_ids = {c.id};
    for (uint32_t k = 0; k < 4; ++k) {
      c.spatial.Add(k, 2.0);
      c.temporal.Add(k + 10, 3.0);
    }
    micros.push_back(std::move(c));
  }
  IntegrationParams indexed;
  indexed.delta_sim = 0.15;
  IntegrationParams naive = indexed;
  naive.use_candidate_index = false;
  IntegrationStats indexed_stats;
  IntegrationStats naive_stats;
  ClusterIdGenerator ids_a(1000);
  ClusterIdGenerator ids_b(1000);
  const auto a = IntegrateClusters(micros, indexed, &ids_a, &indexed_stats);
  const auto b = IntegrateClusters(micros, naive, &ids_b, &naive_stats);
  ExpectIdentical(a, b);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_GT(indexed_stats.index_compactions, 0u);
  EXPECT_EQ(naive_stats.index_compactions, 0u);
}

}  // namespace
}  // namespace atypical
