// Proves the TSan CI job actually detects races (compiled only under
// -DATYPICAL_TSAN=ON).
//
// A sanitizer job that silently stopped instrumenting would stay green
// forever, so this canary races on purpose and demands the failure: the
// parent re-execs itself with TSAN_OPTIONS tuned to exit(66) on a detected
// race; the child runs the exact unguarded-counter pattern that dropping a
// MutexLock from util/sync.h would produce.  If the child exits 0 the
// toolchain lost its race detection and this test fails the suite.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#if !defined(__SANITIZE_THREAD__) && defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define __SANITIZE_THREAD__ 1
#endif
#endif

namespace {

constexpr int kRaceExitCode = 66;
constexpr char kChildEnv[] = "ATYPICAL_TSAN_CANARY_CHILD";

// The deliberate bug: two threads bump one counter with no lock.  (Any
// MutexLock-protected version of this is what the real code does.)
int RunRacyChild() {
  int unguarded_counter = 0;
  auto bump = [&unguarded_counter] {
    for (int i = 0; i < 100000; ++i) ++unguarded_counter;
  };
  std::thread a(bump);
  std::thread b(bump);
  a.join();
  b.join();
  // Reached only if TSan misses the race (it then exits via atexit with the
  // configured exitcode, so a detected race never returns 0).
  std::printf("counter=%d\n", unguarded_counter);
  return 0;
}

int RunParent(const char* self) {
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    return 1;
  }
  if (pid == 0) {
    setenv(kChildEnv, "1", 1);
    // halt_on_error makes the child exit at the first report with our
    // sentinel code instead of continuing or aborting.
    setenv("TSAN_OPTIONS", "exitcode=66 halt_on_error=1 abort_on_error=0", 1);
    execl(self, self, (char*)nullptr);
    std::perror("execl");
    _exit(127);
  }
  int status = 0;
  if (waitpid(pid, &status, 0) != pid) {
    std::perror("waitpid");
    return 1;
  }
  if (WIFEXITED(status) && WEXITSTATUS(status) == kRaceExitCode) {
    std::printf("ok: TSan flagged the deliberate race (child exit %d)\n",
                kRaceExitCode);
    return 0;
  }
  std::fprintf(stderr,
               "FAIL: deliberately racy child did not trip TSan "
               "(status=0x%x) — the sanitizer job is not detecting races\n",
               status);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;  // no flags; gtest-free main keeps the canary minimal
  // ctest may invoke us through a relative path; /proc/self/exe is the
  // reliable re-exec target on Linux.
  char self[4096];
  const ssize_t len = readlink("/proc/self/exe", self, sizeof(self) - 1);
  if (len > 0) {
    self[len] = '\0';
  } else {
    std::snprintf(self, sizeof(self), "%s", argv[0]);
  }
#ifndef __SANITIZE_THREAD__
  // Defensive: the build system only compiles this file under
  // ATYPICAL_TSAN, but never let an uninstrumented binary "pass".
  std::fprintf(stderr,
               "FAIL: tsan_canary_test built without ThreadSanitizer\n");
  return 1;
#else
  if (std::getenv(kChildEnv) != nullptr) return RunRacyChild();
  return RunParent(self);
#endif
}
