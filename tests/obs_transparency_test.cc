// Instrumentation transparency: pipeline results are a pure function of
// their inputs, never of the metrics registry's state.  Runs the same
// forest-build + query twice while perturbing the registry in between and
// demands bit-identical answers; in a stats build it additionally checks
// the counters the run should have left behind, and under ATYPICAL_NO_STATS
// that the registry stayed empty.
#include <gtest/gtest.h>

#include "analytics/report.h"
#include "core/query.h"
#include "obs/snapshot.h"
#include "obs/stats.h"

namespace atypical {
namespace {

struct RunOutcome {
  size_t num_clusters = 0;
  double mass = 0.0;
  double threshold = 0.0;
  size_t input_micro_clusters = 0;
  size_t forest_micros = 0;
  size_t forest_days = 0;
};

bool operator==(const RunOutcome& a, const RunOutcome& b) {
  return a.num_clusters == b.num_clusters && a.mass == b.mass &&
         a.threshold == b.threshold &&
         a.input_micro_clusters == b.input_micro_clusters &&
         a.forest_micros == b.forest_micros && a.forest_days == b.forest_days;
}

// Builds one tiny month, materializes weeks, answers the whole-area query
// through the materialized plan.  Deterministic per seed.
RunOutcome RunPipeline(uint64_t seed) {
  const auto ctx = analytics::BuildContext(
      WorkloadScale::kTiny, 1, analytics::DefaultForestParams(), seed);
  ctx->forest->MaterializeWeeks();
  QueryEngineOptions options = analytics::DefaultEngineOptions();
  options.use_materialized_levels = true;
  const QueryEngine engine = ctx->MakeEngine(options);
  const QueryResult result =
      engine.Run(ctx->WholeAreaQuery(7), QueryStrategy::kAll);

  RunOutcome out;
  out.num_clusters = result.clusters.size();
  for (const AtypicalCluster& c : result.clusters) out.mass += c.severity();
  out.threshold = result.threshold;
  out.input_micro_clusters = result.cost.input_micro_clusters;
  out.forest_micros = ctx->forest->num_micro_clusters();
  out.forest_days = ctx->forest->Days().size();
  return out;
}

TEST(ObsTransparencyTest, ResultsUnchangedByRegistryState) {
  const RunOutcome first = RunPipeline(23);
  ASSERT_GT(first.num_clusters, 0u);

  // Perturb the registry every way a bystander could: junk writes into the
  // very metrics the pipeline uses, then a full reset.
  obs::Registry()->GetCounter("integration.runs")->Add(999);
  obs::Registry()->GetCounter("forest.days_added")->Add(999);
  obs::Registry()->GetHistogram("query.seconds")->Record(123.0);
  const RunOutcome second = RunPipeline(23);
  EXPECT_TRUE(first == second);

  obs::Registry()->Reset();
  const RunOutcome third = RunPipeline(23);
  EXPECT_TRUE(first == third);
}

#if ATYPICAL_STATS_ENABLED

TEST(ObsTransparencyTest, PipelineLeavesExpectedCounters) {
  obs::Registry()->Reset();
  const RunOutcome outcome = RunPipeline(23);
  const obs::StatsSnapshot snapshot = obs::Registry()->Snapshot();

  EXPECT_EQ(snapshot.CounterValue("forest.days_added"), outcome.forest_days);
  EXPECT_EQ(snapshot.CounterValue("forest.weeks_materialized"), 1u);
  EXPECT_EQ(snapshot.CounterValue("query.runs"), 1u);
  EXPECT_EQ(snapshot.CounterValue("query.clusters_out"), outcome.num_clusters);
  EXPECT_GT(snapshot.CounterValue("retrieval.records_in"), 0u);
  EXPECT_GE(snapshot.CounterValue("integration.runs"), 1u);

  bool saw_query_seconds = false;
  for (const auto& h : snapshot.histograms) {
    if (h.name == "query.seconds") {
      saw_query_seconds = true;
      EXPECT_EQ(h.count, 1u);
    }
  }
  EXPECT_TRUE(saw_query_seconds);
}

#else  // !ATYPICAL_STATS_ENABLED

TEST(ObsTransparencyTest, RegistryStaysEmptyWithoutStats) {
  (void)RunPipeline(23);  // warm-up: only the registry writes matter
  const obs::StatsSnapshot snapshot = obs::Registry()->Snapshot();
  EXPECT_TRUE(snapshot.empty());
  EXPECT_EQ(snapshot.ToJson(),
            "{\n"
            "  \"schema_version\": 1,\n"
            "  \"counters\": {},\n"
            "  \"gauges\": {},\n"
            "  \"histograms\": {}\n"
            "}\n");
}

#endif  // ATYPICAL_STATS_ENABLED

}  // namespace
}  // namespace atypical
