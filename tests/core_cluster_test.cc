#include "core/cluster.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace atypical {
namespace {

TEST(FeatureVectorTest, StartsEmpty) {
  FeatureVector f;
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.size(), 0u);
  EXPECT_DOUBLE_EQ(f.total(), 0.0);
  EXPECT_DOUBLE_EQ(f.Get(5), 0.0);
  EXPECT_FALSE(f.Contains(5));
}

TEST(FeatureVectorTest, AddAccumulatesPerKey) {
  FeatureVector f;
  f.Add(3, 2.0);
  f.Add(1, 1.0);
  f.Add(3, 4.0);
  EXPECT_EQ(f.size(), 2u);
  EXPECT_DOUBLE_EQ(f.Get(3), 6.0);
  EXPECT_DOUBLE_EQ(f.Get(1), 1.0);
  EXPECT_DOUBLE_EQ(f.total(), 7.0);
}

TEST(FeatureVectorTest, ZeroSeverityIsIgnored) {
  FeatureVector f;
  f.Add(1, 0.0);
  EXPECT_TRUE(f.empty());
}

TEST(FeatureVectorTest, EntriesSortedByKey) {
  FeatureVector f;
  f.Add(9, 1.0);
  f.Add(2, 1.0);
  f.Add(5, 1.0);
  f.Add(2, 1.0);
  const auto& entries = f.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].key, 2u);
  EXPECT_EQ(entries[1].key, 5u);
  EXPECT_EQ(entries[2].key, 9u);
  EXPECT_DOUBLE_EQ(entries[0].severity, 2.0);
}

TEST(FeatureVectorTest, InOrderAppendsFastPath) {
  FeatureVector f;
  for (uint32_t k = 0; k < 100; ++k) f.Add(k, 1.0);
  EXPECT_EQ(f.size(), 100u);
  EXPECT_DOUBLE_EQ(f.total(), 100.0);
}

TEST(FeatureVectorTest, CommonSeverityOverSharedKeys) {
  FeatureVector a;
  a.Add(1, 10.0);
  a.Add(2, 20.0);
  a.Add(3, 30.0);
  FeatureVector b;
  b.Add(2, 5.0);
  b.Add(3, 7.0);
  b.Add(4, 100.0);
  const auto [mine, theirs] = a.CommonSeverity(b);
  EXPECT_DOUBLE_EQ(mine, 50.0);   // a's severity on keys {2,3}
  EXPECT_DOUBLE_EQ(theirs, 12.0);  // b's severity on keys {2,3}
}

TEST(FeatureVectorTest, CommonSeverityDisjointIsZero) {
  FeatureVector a;
  a.Add(1, 10.0);
  FeatureVector b;
  b.Add(2, 10.0);
  const auto [mine, theirs] = a.CommonSeverity(b);
  EXPECT_DOUBLE_EQ(mine, 0.0);
  EXPECT_DOUBLE_EQ(theirs, 0.0);
}

TEST(FeatureVectorTest, MergeFollowsEq5) {
  FeatureVector a;
  a.Add(1, 10.0);
  a.Add(2, 20.0);
  FeatureVector b;
  b.Add(2, 5.0);
  b.Add(4, 3.0);
  const FeatureVector merged = FeatureVector::Merge(a, b);
  EXPECT_EQ(merged.size(), 3u);
  EXPECT_DOUBLE_EQ(merged.Get(1), 10.0);  // carried over
  EXPECT_DOUBLE_EQ(merged.Get(2), 25.0);  // accumulated (common key)
  EXPECT_DOUBLE_EQ(merged.Get(4), 3.0);   // carried over
  EXPECT_DOUBLE_EQ(merged.total(), a.total() + b.total());
}

TEST(FeatureVectorTest, MergeWithEmpty) {
  FeatureVector a;
  a.Add(1, 2.0);
  const FeatureVector empty;
  EXPECT_EQ(FeatureVector::Merge(a, empty), a);
  EXPECT_EQ(FeatureVector::Merge(empty, a), a);
}

TEST(FeatureVectorTest, TopReturnsHighestSeverity) {
  FeatureVector f;
  f.Add(1, 5.0);
  f.Add(2, 50.0);
  f.Add(3, 12.0);
  EXPECT_EQ(f.Top().key, 2u);
  EXPECT_DOUBLE_EQ(f.Top().severity, 50.0);
}

TEST(FeatureVectorTest, TopEntriesOrderedDescending) {
  FeatureVector f;
  f.Add(1, 5.0);
  f.Add(2, 50.0);
  f.Add(3, 12.0);
  f.Add(4, 12.0);
  const auto top = f.TopEntries(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, 2u);
  EXPECT_EQ(top[1].key, 3u);  // tie broken by key
  EXPECT_EQ(top[2].key, 4u);
}

TEST(FeatureVectorDeathTest, TopOnEmptyDies) {
  const FeatureVector f;
  EXPECT_DEATH((void)f.Top(), "Check failed");
}

TEST(FeatureVectorDeathTest, NegativeSeverityDies) {
  FeatureVector f;
  EXPECT_DEATH(f.Add(1, -1.0), "Check failed");
}

TEST(FeatureVectorTest, RandomizedAddMatchesReferenceMap) {
  Rng rng(77);
  FeatureVector f;
  std::map<uint32_t, double> reference;
  for (int i = 0; i < 5000; ++i) {
    const uint32_t key = static_cast<uint32_t>(rng.UniformInt(uint64_t{64}));
    const double severity = rng.Uniform(0.1, 5.0);
    f.Add(key, severity);
    reference[key] += severity;
  }
  ASSERT_EQ(f.size(), reference.size());
  double total = 0.0;
  for (const auto& [key, severity] : reference) {
    EXPECT_NEAR(f.Get(key), severity, 1e-9);
    total += severity;
  }
  EXPECT_NEAR(f.total(), total, 1e-6);
}

TEST(AtypicalClusterTest, SeverityInvariantHoldsByConstruction) {
  // Σμ == Σν: both features distribute the same record severities.
  AtypicalCluster c;
  struct Rec {
    uint32_t sensor;
    uint32_t window;
    double severity;
  };
  const std::vector<Rec> recs = {
      {1, 10, 4.0}, {1, 11, 5.0}, {2, 11, 5.0}, {3, 12, 5.0}, {4, 12, 2.0}};
  for (const Rec& r : recs) {
    c.spatial.Add(r.sensor, r.severity);
    c.temporal.Add(r.window, r.severity);
  }
  EXPECT_DOUBLE_EQ(c.spatial.total(), c.temporal.total());
  EXPECT_DOUBLE_EQ(c.severity(), 21.0);
  EXPECT_EQ(c.num_sensors(), 4);
  EXPECT_EQ(c.num_windows(), 3);
}

TEST(AtypicalClusterTest, DebugStringMentionsKeyFacts) {
  AtypicalCluster c;
  c.id = 7;
  c.spatial.Add(12, 182.0);
  c.temporal.Add(32, 182.0);  // window 32 of a 15-min grid = 8:00am
  c.key_mode = TemporalKeyMode::kTimeOfDay;
  c.micro_ids = {7};
  const std::string s = c.DebugString(TimeGrid(15));
  EXPECT_NE(s.find("cluster 7"), std::string::npos);
  EXPECT_NE(s.find("s12"), std::string::npos);
  EXPECT_NE(s.find("8:00am"), std::string::npos);
}

TEST(AtypicalClusterTest, EmptyClusterDebugString) {
  AtypicalCluster c;
  c.id = 3;
  EXPECT_NE(c.DebugString(TimeGrid(15)).find("empty"), std::string::npos);
}

TEST(ClusterIdGeneratorTest, MonotonicallyIncreasing) {
  ClusterIdGenerator ids(10);
  EXPECT_EQ(ids.Next(), 10u);
  EXPECT_EQ(ids.Next(), 11u);
  EXPECT_EQ(ids.Next(), 12u);
}

TEST(FeatureVectorTest, ByteSizeGrowsWithEntries) {
  FeatureVector small;
  small.Add(1, 1.0);
  FeatureVector big;
  for (uint32_t k = 0; k < 100; ++k) big.Add(k, 1.0);
  EXPECT_GT(big.ByteSize(), small.ByteSize());
}

}  // namespace
}  // namespace atypical
