#include "core/cluster.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "util/random.h"

namespace atypical {
namespace {

TEST(FeatureVectorTest, StartsEmpty) {
  FeatureVector f;
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.size(), 0u);
  EXPECT_DOUBLE_EQ(f.total(), 0.0);
  EXPECT_DOUBLE_EQ(f.Get(5), 0.0);
  EXPECT_FALSE(f.Contains(5));
}

TEST(FeatureVectorTest, AddAccumulatesPerKey) {
  FeatureVector f;
  f.Add(3, 2.0);
  f.Add(1, 1.0);
  f.Add(3, 4.0);
  EXPECT_EQ(f.size(), 2u);
  EXPECT_DOUBLE_EQ(f.Get(3), 6.0);
  EXPECT_DOUBLE_EQ(f.Get(1), 1.0);
  EXPECT_DOUBLE_EQ(f.total(), 7.0);
}

TEST(FeatureVectorTest, ZeroSeverityIsIgnored) {
  FeatureVector f;
  f.Add(1, 0.0);
  EXPECT_TRUE(f.empty());
}

TEST(FeatureVectorTest, EntriesSortedByKey) {
  FeatureVector f;
  f.Add(9, 1.0);
  f.Add(2, 1.0);
  f.Add(5, 1.0);
  f.Add(2, 1.0);
  const auto& entries = f.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].key, 2u);
  EXPECT_EQ(entries[1].key, 5u);
  EXPECT_EQ(entries[2].key, 9u);
  EXPECT_DOUBLE_EQ(entries[0].severity, 2.0);
}

TEST(FeatureVectorTest, InOrderAppendsFastPath) {
  FeatureVector f;
  for (uint32_t k = 0; k < 100; ++k) f.Add(k, 1.0);
  EXPECT_EQ(f.size(), 100u);
  EXPECT_DOUBLE_EQ(f.total(), 100.0);
}

TEST(FeatureVectorTest, CommonSeverityOverSharedKeys) {
  FeatureVector a;
  a.Add(1, 10.0);
  a.Add(2, 20.0);
  a.Add(3, 30.0);
  FeatureVector b;
  b.Add(2, 5.0);
  b.Add(3, 7.0);
  b.Add(4, 100.0);
  const auto [mine, theirs] = a.CommonSeverity(b);
  EXPECT_DOUBLE_EQ(mine, 50.0);   // a's severity on keys {2,3}
  EXPECT_DOUBLE_EQ(theirs, 12.0);  // b's severity on keys {2,3}
}

TEST(FeatureVectorTest, CommonSeverityDisjointIsZero) {
  FeatureVector a;
  a.Add(1, 10.0);
  FeatureVector b;
  b.Add(2, 10.0);
  const auto [mine, theirs] = a.CommonSeverity(b);
  EXPECT_DOUBLE_EQ(mine, 0.0);
  EXPECT_DOUBLE_EQ(theirs, 0.0);
}

TEST(FeatureVectorTest, MergeFollowsEq5) {
  FeatureVector a;
  a.Add(1, 10.0);
  a.Add(2, 20.0);
  FeatureVector b;
  b.Add(2, 5.0);
  b.Add(4, 3.0);
  const FeatureVector merged = FeatureVector::Merge(a, b);
  EXPECT_EQ(merged.size(), 3u);
  EXPECT_DOUBLE_EQ(merged.Get(1), 10.0);  // carried over
  EXPECT_DOUBLE_EQ(merged.Get(2), 25.0);  // accumulated (common key)
  EXPECT_DOUBLE_EQ(merged.Get(4), 3.0);   // carried over
  EXPECT_DOUBLE_EQ(merged.total(), a.total() + b.total());
}

TEST(FeatureVectorTest, MergeWithEmpty) {
  FeatureVector a;
  a.Add(1, 2.0);
  const FeatureVector empty;
  EXPECT_EQ(FeatureVector::Merge(a, empty), a);
  EXPECT_EQ(FeatureVector::Merge(empty, a), a);
}

TEST(FeatureVectorTest, TopReturnsHighestSeverity) {
  FeatureVector f;
  f.Add(1, 5.0);
  f.Add(2, 50.0);
  f.Add(3, 12.0);
  EXPECT_EQ(f.Top().key, 2u);
  EXPECT_DOUBLE_EQ(f.Top().severity, 50.0);
}

TEST(FeatureVectorTest, TopEntriesOrderedDescending) {
  FeatureVector f;
  f.Add(1, 5.0);
  f.Add(2, 50.0);
  f.Add(3, 12.0);
  f.Add(4, 12.0);
  const auto top = f.TopEntries(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, 2u);
  EXPECT_EQ(top[1].key, 3u);  // tie broken by key
  EXPECT_EQ(top[2].key, 4u);
}

TEST(FeatureVectorDeathTest, TopOnEmptyDies) {
  const FeatureVector f;
  EXPECT_DEATH((void)f.Top(), "Check failed");
}

TEST(FeatureVectorDeathTest, NegativeSeverityDies) {
  FeatureVector f;
  EXPECT_DEATH(f.Add(1, -1.0), "Check failed");
}

TEST(FeatureVectorTest, RandomizedAddMatchesReferenceMap) {
  Rng rng(77);
  FeatureVector f;
  std::map<uint32_t, double> reference;
  for (int i = 0; i < 5000; ++i) {
    const uint32_t key = static_cast<uint32_t>(rng.UniformInt(uint64_t{64}));
    const double severity = rng.Uniform(0.1, 5.0);
    f.Add(key, severity);
    reference[key] += severity;
  }
  ASSERT_EQ(f.size(), reference.size());
  double total = 0.0;
  for (const auto& [key, severity] : reference) {
    EXPECT_NEAR(f.Get(key), severity, 1e-9);
    total += severity;
  }
  EXPECT_NEAR(f.total(), total, 1e-6);
}

TEST(AtypicalClusterTest, SeverityInvariantHoldsByConstruction) {
  // Σμ == Σν: both features distribute the same record severities.
  AtypicalCluster c;
  struct Rec {
    uint32_t sensor;
    uint32_t window;
    double severity;
  };
  const std::vector<Rec> recs = {
      {1, 10, 4.0}, {1, 11, 5.0}, {2, 11, 5.0}, {3, 12, 5.0}, {4, 12, 2.0}};
  for (const Rec& r : recs) {
    c.spatial.Add(r.sensor, r.severity);
    c.temporal.Add(r.window, r.severity);
  }
  EXPECT_DOUBLE_EQ(c.spatial.total(), c.temporal.total());
  EXPECT_DOUBLE_EQ(c.severity(), 21.0);
  EXPECT_EQ(c.num_sensors(), 4);
  EXPECT_EQ(c.num_windows(), 3);
}

TEST(AtypicalClusterTest, DebugStringMentionsKeyFacts) {
  AtypicalCluster c;
  c.id = 7;
  c.spatial.Add(12, 182.0);
  c.temporal.Add(32, 182.0);  // window 32 of a 15-min grid = 8:00am
  c.key_mode = TemporalKeyMode::kTimeOfDay;
  c.micro_ids = {7};
  const std::string s = c.DebugString(TimeGrid(15));
  EXPECT_NE(s.find("cluster 7"), std::string::npos);
  EXPECT_NE(s.find("s12"), std::string::npos);
  EXPECT_NE(s.find("8:00am"), std::string::npos);
}

TEST(AtypicalClusterTest, EmptyClusterDebugString) {
  AtypicalCluster c;
  c.id = 3;
  EXPECT_NE(c.DebugString(TimeGrid(15)).find("empty"), std::string::npos);
}

TEST(ClusterIdGeneratorTest, MonotonicallyIncreasing) {
  ClusterIdGenerator ids(10);
  EXPECT_EQ(ids.Next(), 10u);
  EXPECT_EQ(ids.Next(), 11u);
  EXPECT_EQ(ids.Next(), 12u);
}

TEST(FeatureVectorTest, ByteSizeGrowsWithEntries) {
  FeatureVector small;
  small.Add(1, 1.0);
  FeatureVector big;
  for (uint32_t k = 0; k < 100; ++k) big.Add(k, 1.0);
  EXPECT_GT(big.ByteSize(), small.ByteSize());
}

// ---- adversarial insertion orders vs. a brute-force map reference ----
//
// Severities are dyadic rationals (multiples of 0.25), so every partial sum
// is exact in binary floating point and the comparisons below can demand
// exact equality regardless of accumulation order.

void ExpectMatchesReference(const FeatureVector& f,
                            const std::map<uint32_t, double>& reference) {
  const auto& entries = f.entries();
  ASSERT_EQ(entries.size(), reference.size());
  size_t i = 0;
  double total = 0.0;
  double max_severity = 0.0;
  for (const auto& [key, severity] : reference) {
    EXPECT_EQ(entries[i].key, key);
    EXPECT_DOUBLE_EQ(entries[i].severity, severity);
    total += severity;
    max_severity = std::max(max_severity, severity);
    ++i;
  }
  EXPECT_DOUBLE_EQ(f.total(), total);
  EXPECT_DOUBLE_EQ(f.max_entry_severity(), max_severity);
}

TEST(FeatureVectorAdversarialTest, DescendingKeys) {
  FeatureVector f;
  std::map<uint32_t, double> reference;
  for (uint32_t k = 50; k > 0; --k) {
    const double severity = 0.25 * static_cast<double>(k);
    f.Add(k, severity);
    reference[k] += severity;
  }
  ExpectMatchesReference(f, reference);
}

TEST(FeatureVectorAdversarialTest, InterleavedDuplicates) {
  FeatureVector f;
  std::map<uint32_t, double> reference;
  for (int round = 0; round < 8; ++round) {
    for (uint32_t k : {7u, 3u, 7u, 1u, 3u, 9u, 7u}) {
      const double severity = 0.25 * static_cast<double>(round + 1);
      f.Add(k, severity);
      reference[k] += severity;
    }
  }
  ExpectMatchesReference(f, reference);
}

TEST(FeatureVectorAdversarialTest, AddAfterReadRedirties) {
  FeatureVector f;
  std::map<uint32_t, double> reference;
  for (uint32_t k : {9u, 2u, 5u}) {
    f.Add(k, 1.0);
    reference[k] += 1.0;
  }
  (void)f.entries();  // forces compaction
  EXPECT_DOUBLE_EQ(f.max_entry_severity(), 1.0);
  for (uint32_t k : {5u, 2u, 11u, 5u}) {  // out of order again
    f.Add(k, 0.5);
    reference[k] += 0.5;
  }
  ExpectMatchesReference(f, reference);
}

TEST(FeatureVectorAdversarialTest, RandomOrdersMatchReferenceAndEachOther) {
  Rng rng(123);
  std::vector<std::pair<uint32_t, double>> adds;
  std::map<uint32_t, double> reference;
  for (int i = 0; i < 2000; ++i) {
    const uint32_t key = static_cast<uint32_t>(rng.UniformInt(uint64_t{97}));
    // Dyadic severities: exact sums in any order.
    const double severity =
        0.25 * static_cast<double>(1 + rng.UniformInt(uint64_t{16}));
    adds.emplace_back(key, severity);
    reference[key] += severity;
  }
  FeatureVector in_order;
  for (const auto& [key, severity] : adds) in_order.Add(key, severity);
  ExpectMatchesReference(in_order, reference);

  // CommonSeverity against a shuffled copy of itself must report the full
  // severity mass on both sides.
  std::vector<std::pair<uint32_t, double>> shuffled = adds;
  for (size_t i = shuffled.size() - 1; i > 0; --i) {
    std::swap(shuffled[i], shuffled[rng.UniformInt(i + 1)]);
  }
  FeatureVector reordered;
  for (const auto& [key, severity] : shuffled) reordered.Add(key, severity);
  ExpectMatchesReference(reordered, reference);
  const auto [mine, theirs] = in_order.CommonSeverity(reordered);
  EXPECT_DOUBLE_EQ(mine, in_order.total());
  EXPECT_DOUBLE_EQ(theirs, reordered.total());
}

// ---- galloping intersection ----

TEST(FeatureVectorTest, GallopingIntersectionMatchesMergeScan) {
  // Sizes skewed well past the gallop cutoff: 5 keys vs 4096.  The merge
  // scan visits common keys in ascending order; so does the gallop, so the
  // sums must be bit-identical (dyadic severities make them exact anyway).
  Rng rng(9);
  FeatureVector small;
  FeatureVector large;
  std::map<uint32_t, double> small_ref;
  std::map<uint32_t, double> large_ref;
  for (uint32_t k = 0; k < 4096; ++k) {
    const double severity =
        0.25 * static_cast<double>(1 + rng.UniformInt(uint64_t{8}));
    large.Add(k, severity);
    large_ref[k] += severity;
  }
  for (uint32_t k : {3u, 700u, 701u, 4000u, 9999u}) {  // 9999 misses
    small.Add(k, 0.75);
    small_ref[k] += 0.75;
  }
  double expect_small = 0.0;
  double expect_large = 0.0;
  for (const auto& [key, severity] : small_ref) {
    const auto it = large_ref.find(key);
    if (it == large_ref.end()) continue;
    expect_small += severity;
    expect_large += it->second;
  }
  const auto [mine, theirs] = small.CommonSeverity(large);
  EXPECT_DOUBLE_EQ(mine, expect_small);
  EXPECT_DOUBLE_EQ(theirs, expect_large);
  // Symmetric call swaps the roles (and which side gallops).
  const auto [mine2, theirs2] = large.CommonSeverity(small);
  EXPECT_DOUBLE_EQ(mine2, expect_large);
  EXPECT_DOUBLE_EQ(theirs2, expect_small);
}

TEST(FeatureVectorTest, GallopingHandlesAllLargeKeysBelowSmall) {
  FeatureVector small;
  small.Add(100000, 1.0);
  FeatureVector large;
  for (uint32_t k = 0; k < 256; ++k) large.Add(k, 1.0);
  const auto [mine, theirs] = small.CommonSeverity(large);
  EXPECT_DOUBLE_EQ(mine, 0.0);
  EXPECT_DOUBLE_EQ(theirs, 0.0);
}

// ---- similarity fast-path summaries ----

TEST(FeatureVectorTest, SignatureTracksSpanAndBuckets) {
  FeatureVector f;
  EXPECT_TRUE(f.signature().empty());
  f.Add(40, 1.0);
  f.Add(7, 2.0);
  const FeatureVector::Signature& sig = f.signature();
  EXPECT_EQ(sig.min_key, 7u);
  EXPECT_EQ(sig.max_key, 40u);
  EXPECT_TRUE(sig.HasBucket(FeatureVector::Signature::BucketOf(7)));
  EXPECT_TRUE(sig.HasBucket(FeatureVector::Signature::BucketOf(40)));
}

TEST(FeatureVectorTest, SignatureDisjointOnSeparatedSpans) {
  FeatureVector a;
  a.Add(1, 1.0);
  a.Add(5, 1.0);
  FeatureVector b;
  b.Add(100, 1.0);
  EXPECT_TRUE(a.signature().Disjoint(b.signature()));
  EXPECT_TRUE(b.signature().Disjoint(a.signature()));
  b.Add(5, 1.0);  // now they share key 5
  EXPECT_FALSE(a.signature().Disjoint(b.signature()));
  EXPECT_TRUE(FeatureVector().signature().Disjoint(a.signature()));
}

TEST(FeatureVectorTest, CountKeysInRange) {
  FeatureVector f;
  for (uint32_t k : {2u, 4u, 8u, 16u, 32u}) f.Add(k, 1.0);
  EXPECT_EQ(f.CountKeysInRange(0, 100), 5u);
  EXPECT_EQ(f.CountKeysInRange(4, 16), 3u);
  EXPECT_EQ(f.CountKeysInRange(5, 7), 0u);
  EXPECT_EQ(f.CountKeysInRange(8, 8), 1u);
  EXPECT_EQ(f.CountKeysInRange(33, 2), 0u);  // inverted range
}

void ExpectSketchMatchesRebuild(const FeatureVector& f) {
  const auto& sketch = f.severity_sketch();
  std::array<double, FeatureVector::kSignatureBuckets> expect{};
  for (const FeatureVector::Entry& e : f.entries()) {
    expect[FeatureVector::Signature::BucketOf(e.key)] += e.severity;
  }
  for (uint32_t b = 0; b < FeatureVector::kSignatureBuckets; ++b) {
    EXPECT_DOUBLE_EQ(sketch[b], expect[b]) << "bucket " << b;
  }
}

TEST(FeatureVectorTest, SeveritySketchMaintainedByAddAndMerge) {
  FeatureVector a;
  for (uint32_t k : {1u, 9u, 40u}) a.Add(k, 0.5 * (k + 1));
  ExpectSketchMatchesRebuild(a);  // lazily built here
  a.Add(9, 0.25);                 // incremental update on a built sketch
  a.Add(77, 1.5);
  ExpectSketchMatchesRebuild(a);

  FeatureVector b;
  b.Add(9, 2.0);
  b.Add(500, 0.75);
  (void)b.severity_sketch();  // builds b's sketch so Merge carries one
  const FeatureVector merged = FeatureVector::Merge(a, b);
  // Both parents had sketches, so the merge carries one forward.
  ExpectSketchMatchesRebuild(merged);
  const FeatureVector::Signature& sig = merged.signature();
  EXPECT_EQ(sig.min_key, 1u);
  EXPECT_EQ(sig.max_key, 500u);
}

TEST(FeatureVectorTest, CopyPreservesFastPathState) {
  FeatureVector f;
  for (uint32_t k : {3u, 11u, 60u}) f.Add(k, 1.25);
  (void)f.severity_sketch();  // builds the sketch the copy must preserve
  FeatureVector copy = f;
  ExpectSketchMatchesRebuild(copy);
  copy.Add(90, 2.0);  // must not touch the original
  EXPECT_EQ(f.size(), 3u);
  EXPECT_EQ(copy.size(), 4u);
  ExpectSketchMatchesRebuild(f);
  ExpectSketchMatchesRebuild(copy);
  EXPECT_EQ(f.signature().max_key, 60u);
  EXPECT_EQ(copy.signature().max_key, 90u);
}

TEST(AtypicalClusterTest, ByteSizeHeaderCountsChildLinks) {
  // The header must account for every metadata field — notably the
  // left_child/right_child links the old hardcoded 48 omitted.
  constexpr uint64_t kExpectedHeader =
      3 * sizeof(ClusterId) + 2 * sizeof(int) + sizeof(int64_t) +
      sizeof(EventId) + sizeof(TemporalKeyMode);
  static_assert(kExpectedHeader > 48, "header must include child links");
  AtypicalCluster c;
  EXPECT_EQ(c.ByteSize(), kExpectedHeader);
  c.micro_ids = {1, 2, 3};
  EXPECT_EQ(c.ByteSize(), kExpectedHeader + 3 * sizeof(ClusterId));
  c.spatial.Add(1, 2.0);
  EXPECT_EQ(c.ByteSize(), kExpectedHeader + 3 * sizeof(ClusterId) +
                              sizeof(uint32_t) + sizeof(double));
}

TEST(FeatureVectorTest, TopAndTopEntriesMatchBruteForce) {
  Rng rng(2024);
  FeatureVector f;
  std::vector<FeatureVector::Entry> reference;
  for (uint32_t k = 0; k < 300; ++k) {
    const double severity =
        0.25 * static_cast<double>(1 + rng.UniformInt(uint64_t{40}));
    f.Add(k, severity);
    reference.push_back({k, severity});
  }
  // Brute-force Top: first entry with the maximum severity.
  FeatureVector::Entry best = reference[0];
  for (const auto& e : reference) {
    if (e.severity > best.severity) best = e;
  }
  EXPECT_EQ(f.Top().key, best.key);
  EXPECT_DOUBLE_EQ(f.Top().severity, best.severity);

  std::sort(reference.begin(), reference.end(),
            [](const FeatureVector::Entry& a, const FeatureVector::Entry& b) {
              if (a.severity != b.severity) return a.severity > b.severity;
              return a.key < b.key;
            });
  for (size_t k : {size_t{0}, size_t{1}, size_t{7}, size_t{300}, size_t{999}}) {
    const auto top = f.TopEntries(k);
    const size_t expect_n = std::min(k, reference.size());
    ASSERT_EQ(top.size(), expect_n) << "k=" << k;
    for (size_t i = 0; i < expect_n; ++i) {
      EXPECT_EQ(top[i].key, reference[i].key) << "k=" << k << " i=" << i;
      EXPECT_DOUBLE_EQ(top[i].severity, reference[i].severity);
    }
  }
}

}  // namespace
}  // namespace atypical
