#include <cstdio>
#include <utility>

#include <gtest/gtest.h>

#include "gen/workload.h"
#include "storage/reader.h"
#include "storage/writer.h"

namespace atypical {
namespace storage {
namespace {

class StorageRoundTripTest : public ::testing::Test {
 protected:
  StorageRoundTripTest() : workload_(MakeWorkload(WorkloadScale::kTiny, 3)) {
    dataset_ = workload_->generator->GenerateMonth(0);
    path_ = ::testing::TempDir() + "/roundtrip_test.atyp";
  }
  ~StorageRoundTripTest() override { std::remove(path_.c_str()); }

  std::unique_ptr<Workload> workload_;
  Dataset dataset_;
  std::string path_;
};

TEST_F(StorageRoundTripTest, WriteThenReadAllIsIdentity) {
  const Result<uint64_t> bytes = WriteDataset(dataset_, path_);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  EXPECT_GT(*bytes, 0u);

  const Result<Dataset> back = ReadDataset(path_);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_readings(), dataset_.num_readings());
  for (int64_t i = 0; i < dataset_.num_readings(); ++i) {
    const Reading& a = dataset_.readings()[i];
    const Reading& b = back->readings()[i];
    ASSERT_EQ(a.sensor, b.sensor) << i;
    ASSERT_EQ(a.window, b.window) << i;
    ASSERT_EQ(a.speed_mph, b.speed_mph) << i;
    ASSERT_EQ(a.occupancy, b.occupancy) << i;
    ASSERT_EQ(a.atypical_minutes, b.atypical_minutes) << i;
    ASSERT_EQ(a.true_event, b.true_event) << i;
  }
}

TEST_F(StorageRoundTripTest, MetaSurvivesRoundTrip) {
  ASSERT_TRUE(WriteDataset(dataset_, path_).ok());
  const Result<DatasetReader> reader = DatasetReader::Open(path_);
  ASSERT_TRUE(reader.ok());
  const DatasetMeta& meta = reader->meta();
  EXPECT_EQ(meta.month_index, dataset_.meta().month_index);
  EXPECT_EQ(meta.first_day, dataset_.meta().first_day);
  EXPECT_EQ(meta.num_days, dataset_.meta().num_days);
  EXPECT_EQ(meta.num_sensors, dataset_.meta().num_sensors);
  EXPECT_EQ(meta.time_grid.window_minutes(),
            dataset_.meta().time_grid.window_minutes());
}

TEST_F(StorageRoundTripTest, SmallBlocksProduceManyBlocksSameData) {
  WriterOptions options;
  options.block_records = 100;  // force thousands of blocks
  ASSERT_TRUE(WriteDataset(dataset_, path_, options).ok());

  Result<DatasetReader> reader = DatasetReader::Open(path_);
  ASSERT_TRUE(reader.ok());
  int64_t total = 0;
  int blocks = 0;
  std::vector<Reading> block;
  while (true) {
    Result<bool> more = reader->NextBlock(&block);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!*more) break;
    EXPECT_LE(block.size(), 100u);
    total += static_cast<int64_t>(block.size());
    ++blocks;
  }
  EXPECT_EQ(total, dataset_.num_readings());
  EXPECT_EQ(blocks, (dataset_.num_readings() + 99) / 100);
}

TEST_F(StorageRoundTripTest, ScanAtypicalSelectsAtypicalRecords) {
  ASSERT_TRUE(WriteDataset(dataset_, path_).ok());
  Result<DatasetReader> reader = DatasetReader::Open(path_);
  ASSERT_TRUE(reader.ok());
  std::vector<AtypicalRecord> scanned;
  const Result<int64_t> total = reader->ScanAtypical(
      [&](const AtypicalRecord& r) { scanned.push_back(r); });
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(*total, dataset_.num_readings());
  const std::vector<AtypicalRecord> expected =
      dataset_.ExtractAtypicalRecords();
  ASSERT_EQ(scanned.size(), expected.size());
  for (size_t i = 0; i < scanned.size(); ++i) {
    EXPECT_EQ(scanned[i], expected[i]) << i;
  }
}

TEST_F(StorageRoundTripTest, EmptyDatasetRoundTrips) {
  DatasetMeta meta = dataset_.meta();
  const Dataset empty(meta, {});
  ASSERT_TRUE(WriteDataset(empty, path_).ok());
  const Result<Dataset> back = ReadDataset(path_);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_readings(), 0);
}

TEST_F(StorageRoundTripTest, ZeroRecordDatasetStreamsNoBlocks) {
  const Dataset empty(dataset_.meta(), {});
  ASSERT_TRUE(WriteDataset(empty, path_).ok());
  Result<DatasetReader> reader = DatasetReader::Open(path_);
  ASSERT_TRUE(reader.ok());
  std::vector<Reading> block;
  const Result<bool> more = reader->NextBlock(&block);
  ASSERT_TRUE(more.ok()) << more.status().ToString();
  EXPECT_FALSE(*more);  // straight to the footer
  EXPECT_TRUE(block.empty());
  EXPECT_EQ(reader->meta().num_sensors, dataset_.meta().num_sensors);
}

TEST_F(StorageRoundTripTest, DatasetSmallerThanOneBlockRoundTrips) {
  // 7 readings against the default 65536-record blocks: one partial block.
  const std::vector<Reading>& all = dataset_.readings();
  ASSERT_GE(all.size(), 7u);
  const Dataset small(dataset_.meta(),
                      std::vector<Reading>(all.begin(), all.begin() + 7));
  ASSERT_TRUE(WriteDataset(small, path_).ok());

  Result<DatasetReader> reader = DatasetReader::Open(path_);
  ASSERT_TRUE(reader.ok());
  std::vector<Reading> block;
  Result<bool> more = reader->NextBlock(&block);
  ASSERT_TRUE(more.ok()) << more.status().ToString();
  EXPECT_TRUE(*more);
  ASSERT_EQ(block.size(), 7u);
  for (size_t i = 0; i < block.size(); ++i) {
    EXPECT_EQ(block[i].sensor, all[i].sensor) << i;
    EXPECT_EQ(block[i].window, all[i].window) << i;
    EXPECT_EQ(block[i].atypical_minutes, all[i].atypical_minutes) << i;
  }
  more = reader->NextBlock(&block);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(*more);  // exactly one block before the footer
}

TEST_F(StorageRoundTripTest, MovedFromReaderFailsCleanly) {
  ASSERT_TRUE(WriteDataset(dataset_, path_).ok());
  Result<DatasetReader> opened = DatasetReader::Open(path_);
  ASSERT_TRUE(opened.ok());
  DatasetReader moved_to = std::move(*opened);

  // The moved-from reader must refuse with a status, not crash.
  std::vector<Reading> block;
  const Result<bool> more = opened->NextBlock(&block);
  ASSERT_FALSE(more.ok());
  EXPECT_EQ(more.status().code(), StatusCode::kFailedPrecondition);
  const Result<Dataset> all = opened->ReadAll();
  ASSERT_FALSE(all.ok());
  EXPECT_EQ(all.status().code(), StatusCode::kFailedPrecondition);
  const Result<int64_t> scanned =
      opened->ScanAtypical([](const AtypicalRecord&) {});
  ASSERT_FALSE(scanned.ok());
  EXPECT_EQ(scanned.status().code(), StatusCode::kFailedPrecondition);

  // The moved-to reader still works.
  const Result<Dataset> back = moved_to.ReadAll();
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_readings(), dataset_.num_readings());
}

TEST_F(StorageRoundTripTest, RejectsZeroBlockRecords) {
  WriterOptions options;
  options.block_records = 0;
  const Result<uint64_t> r = WriteDataset(dataset_, path_, options);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(StorageRoundTripTest, WriteToUnwritablePathFails) {
  const Result<uint64_t> r =
      WriteDataset(dataset_, "/nonexistent-dir-xyz/a.atyp");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace storage
}  // namespace atypical
