// QueryService end-to-end: cached and adaptive serving must be bit-identical
// to a direct uncached engine run on the served snapshot, across strategies
// and across epoch publishes; kAuto explores then converges on the cheapest
// strategy.
#include <gtest/gtest.h>

#include <memory>

#include "analytics/report.h"
#include "serve/adaptive.h"
#include "serve/query_service.h"
#include "serve_test_util.h"

namespace atypical {
namespace serve {
namespace {

class QueryServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ctx_ = analytics::BuildContext(WorkloadScale::kTiny, 2,
                                   analytics::DefaultForestParams(), 31)
               .release();
  }
  static void TearDownTestSuite() {
    delete ctx_;
    ctx_ = nullptr;
  }

  std::unique_ptr<ServingForest> ServingWithMonth0() {
    auto serving = MakeServing(*ctx_, analytics::DefaultEngineOptions());
    StageMonth(*ctx_, 0, serving.get());
    serving->PublishSnapshot();
    return serving;
  }

  static analytics::ExperimentContext* ctx_;
};

analytics::ExperimentContext* QueryServiceTest::ctx_ = nullptr;

TEST_F(QueryServiceTest, CachedEqualsUncachedAcrossStrategies) {
  auto serving = ServingWithMonth0();
  QueryService service(serving.get());
  const AnalyticalQuery query = ctx_->WholeAreaQuery(7);

  for (const ServeStrategy strategy :
       {ServeStrategy::kAll, ServeStrategy::kPrune, ServeStrategy::kGuided}) {
    const ServeReply miss = service.ServeQuery(query, strategy);
    EXPECT_FALSE(miss.cache_hit) << ServeStrategyName(strategy);
    const ServeReply hit = service.ServeQuery(query, strategy);
    EXPECT_TRUE(hit.cache_hit) << ServeStrategyName(strategy);
    EXPECT_EQ(hit.result.get(), miss.result.get())
        << "a hit aliases the stored result";

    // The contract: both replies equal a fresh single-threaded uncached run
    // on exactly the snapshot they were served from.
    const QueryResult direct =
        hit.snapshot->engine.Run(query, hit.strategy);
    ExpectBitIdentical(*miss.result, direct);
    ExpectBitIdentical(*hit.result, direct);
  }
}

TEST_F(QueryServiceTest, PublishInvalidatesByEpoch) {
  auto serving = ServingWithMonth0();
  QueryService service(serving.get());
  const AnalyticalQuery query = ctx_->WholeAreaQuery(14);

  const ServeReply first = service.ServeQuery(query, ServeStrategy::kAll);
  ASSERT_TRUE(service.ServeQuery(query, ServeStrategy::kAll).cache_hit);

  StageMonth(*ctx_, 1, serving.get());
  serving->PublishSnapshot();

  // Same query, new epoch: the old entry cannot answer it.
  const ServeReply fresh = service.ServeQuery(query, ServeStrategy::kAll);
  EXPECT_FALSE(fresh.cache_hit);
  EXPECT_GT(fresh.snapshot->epoch, first.snapshot->epoch);
  EXPECT_GT(fresh.result->completeness.days_with_data,
            first.result->completeness.days_with_data);
  ExpectBitIdentical(*fresh.result,
                     fresh.snapshot->engine.Run(query, fresh.strategy));

  // The epoch advance lazily collected the old epoch's entries.
  EXPECT_GT(service.cache_totals().invalidations, 0u);
}

TEST_F(QueryServiceTest, AutoSharesCacheWithExplicitStrategy) {
  auto serving = ServingWithMonth0();
  QueryService service(serving.get());
  const AnalyticalQuery query = ctx_->WholeAreaQuery(7);

  const ServeReply auto_reply = service.ServeQuery(query, ServeStrategy::kAuto);
  EXPECT_FALSE(auto_reply.cache_hit);
  // kAuto resolved before keying: re-issuing with the explicit strategy the
  // service picked must hit the same entry.
  const ServeStrategy explicit_strategy =
      auto_reply.strategy == QueryStrategy::kAll  ? ServeStrategy::kAll
      : auto_reply.strategy == QueryStrategy::kPrune ? ServeStrategy::kPrune
                                                     : ServeStrategy::kGuided;
  const ServeReply explicit_reply = service.ServeQuery(query, explicit_strategy);
  EXPECT_TRUE(explicit_reply.cache_hit);
  EXPECT_EQ(explicit_reply.result.get(), auto_reply.result.get());
}

TEST_F(QueryServiceTest, AutoExploresThenConverges) {
  auto serving = ServingWithMonth0();
  ServeOptions options;
  options.cache_entries = 0;  // every request runs, so every request observes
  options.adaptive.min_samples_per_strategy = 2;
  QueryService service(serving.get(), options);

  // Distinct queries so the adaptive model, not the cache, is exercised.
  for (int day = 0; day < 6; ++day) {
    AnalyticalQuery query = ctx_->WholeAreaQuery(7);
    query.days = DayRange{day, day + 1};
    service.ServeQuery(query, ServeStrategy::kAuto);
  }
  // Exploration filled every strategy to the floor.
  for (const QueryStrategy s :
       {QueryStrategy::kAll, QueryStrategy::kPrune, QueryStrategy::kGuided}) {
    EXPECT_GE(service.strategy_stats(s).samples, 2u)
        << QueryStrategyName(s);
  }

  // Steady state: the choice is the strategy with the lowest latency EWMA.
  const ServeReply reply =
      service.ServeQuery(ctx_->WholeAreaQuery(7), ServeStrategy::kAuto);
  const double chosen_ewma =
      service.strategy_stats(reply.strategy).ewma_seconds;
  for (const QueryStrategy s :
       {QueryStrategy::kAll, QueryStrategy::kPrune, QueryStrategy::kGuided}) {
    // The chosen strategy observed one more sample after the comparison was
    // made, so compare with a small slack against pathological flakiness:
    // it must at least not be dominated outright.
    EXPECT_LE(chosen_ewma,
              service.strategy_stats(s).ewma_seconds * 4.0 + 1e-3)
        << QueryStrategyName(s);
  }
}

TEST_F(QueryServiceTest, SelectorExploresGuidedFirstAndFallsBack) {
  AdaptiveStrategySelector selector;
  // Nothing observed: exploration starts at Gui (the paper's default).
  EXPECT_EQ(selector.ChooseStrategy(), QueryStrategy::kGuided);

  QueryCost cost;
  cost.seconds = 0.010;
  for (uint64_t i = 0; i < 3; ++i) {
    selector.ObserveCost(QueryStrategy::kGuided, cost);
  }
  // Gui is at the floor; the least-sampled remaining strategies follow.
  const QueryStrategy next = selector.ChooseStrategy();
  EXPECT_TRUE(next == QueryStrategy::kPrune || next == QueryStrategy::kAll);
}

TEST_F(QueryServiceTest, SelectorPicksLowestEwmaAfterExploration) {
  AdaptiveStrategySelector selector;
  QueryCost slow;
  slow.seconds = 0.100;
  QueryCost fast;
  fast.seconds = 0.001;
  for (uint64_t i = 0; i < 3; ++i) {
    selector.ObserveCost(QueryStrategy::kGuided, slow);
    selector.ObserveCost(QueryStrategy::kAll, slow);
    selector.ObserveCost(QueryStrategy::kPrune, fast);
  }
  EXPECT_EQ(selector.ChooseStrategy(), QueryStrategy::kPrune);
  EXPECT_EQ(selector.StatsFor(QueryStrategy::kPrune).samples, 3u);
  EXPECT_NEAR(selector.StatsFor(QueryStrategy::kPrune).ewma_seconds, 0.001,
              1e-9);
}

TEST_F(QueryServiceTest, EvictionAccountingUnderTinyCache) {
  auto serving = ServingWithMonth0();
  ServeOptions options;
  options.cache_entries = 2;
  QueryService service(serving.get(), options);

  for (int day = 0; day < 4; ++day) {
    AnalyticalQuery query = ctx_->WholeAreaQuery(7);
    query.days = DayRange{day, day + 1};
    service.ServeQuery(query, ServeStrategy::kAll);
  }
  const QueryResultCache::CacheTotals totals = service.cache_totals();
  EXPECT_EQ(totals.entries, 2u);
  EXPECT_EQ(totals.evictions, 2u);
  EXPECT_EQ(totals.misses, 4u);
}

}  // namespace
}  // namespace serve
}  // namespace atypical
