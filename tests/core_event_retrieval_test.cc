// Algorithm 1: atypical events are the maximal connected components of the
// direct-atypical-related relation (Defs. 1–3), summarized per Def. 4.
#include "core/event_retrieval.h"

#include <set>

#include <gtest/gtest.h>

#include "gen/workload.h"
#include "util/random.h"

namespace atypical {
namespace {

class EventRetrievalTest : public ::testing::Test {
 protected:
  EventRetrievalTest()
      : workload_(MakeWorkload(WorkloadScale::kTiny, 13)), grid_(15) {
    params_.delta_d_miles = 1.5;
    params_.delta_t_minutes = 15;
  }

  const SensorNetwork& network() { return *workload_->sensors; }

  // Two sensors adjacent on the same highway (within δd) and one far away.
  void PickSensors(SensorId* a, SensorId* b, SensorId* far) {
    for (int h = 0; h < network().num_highways(); ++h) {
      const auto& line = network().SensorsOnHighway(h);
      for (size_t i = 0; i + 1 < line.size(); ++i) {
        if (DistanceMiles(network().location(line[i]),
                          network().location(line[i + 1])) <
            params_.delta_d_miles) {
          *a = line[i];
          *b = line[i + 1];
          // Find a sensor far from both.
          for (const Sensor& s : network().sensors()) {
            if (DistanceMiles(s.location, network().location(*a)) > 5.0 &&
                DistanceMiles(s.location, network().location(*b)) > 5.0) {
              *far = s.id;
              return;
            }
          }
        }
      }
    }
    FAIL() << "network lacks suitable sensors";
  }

  std::unique_ptr<Workload> workload_;
  TimeGrid grid_;
  RetrievalParams params_;
  ClusterIdGenerator ids_{1};
};

TEST_F(EventRetrievalTest, EmptyInputYieldsNoEvents) {
  const std::vector<AtypicalRecord> none;
  RetrievalStats stats;
  const auto events = RetrieveEvents(none, network(), grid_, params_, &stats);
  EXPECT_TRUE(events.empty());
  EXPECT_EQ(stats.num_events, 0u);
}

TEST_F(EventRetrievalTest, NearbyRecordsFormOneEvent) {
  SensorId a, b, far;
  PickSensors(&a, &b, &far);
  const std::vector<AtypicalRecord> records = {
      {a, grid_.MakeWindow(0, 32), 5.0f, kNoEvent},
      {b, grid_.MakeWindow(0, 32), 5.0f, kNoEvent},
  };
  const auto events = RetrieveEvents(records, network(), grid_, params_);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0], (std::vector<size_t>{0, 1}));
}

TEST_F(EventRetrievalTest, DistantRecordsStaySeparate) {
  SensorId a, b, far;
  PickSensors(&a, &b, &far);
  const std::vector<AtypicalRecord> records = {
      {a, grid_.MakeWindow(0, 32), 5.0f, kNoEvent},
      {far, grid_.MakeWindow(0, 32), 5.0f, kNoEvent},
  };
  EXPECT_EQ(RetrieveEvents(records, network(), grid_, params_).size(), 2u);
}

TEST_F(EventRetrievalTest, TemporalGapSplitsEvents) {
  SensorId a, b, far;
  PickSensors(&a, &b, &far);
  // Same sensor, windows 2 apart (30 min >= δt 15) -> two events.
  const std::vector<AtypicalRecord> records = {
      {a, grid_.MakeWindow(0, 10), 5.0f, kNoEvent},
      {a, grid_.MakeWindow(0, 12), 5.0f, kNoEvent},
  };
  EXPECT_EQ(RetrieveEvents(records, network(), grid_, params_).size(), 2u);
}

TEST_F(EventRetrievalTest, AdjacentWindowsChain) {
  SensorId a, b, far;
  PickSensors(&a, &b, &far);
  // Windows skipping one slot have gap 15 < δt=20 (directly related), but
  // windows skipping three slots have gap 45-15=30 (not directly related) —
  // the chain through the middle record connects them (Def. 2).
  RetrievalParams params = params_;
  params.delta_t_minutes = 20;
  const std::vector<AtypicalRecord> records = {
      {a, grid_.MakeWindow(0, 10), 5.0f, kNoEvent},
      {a, grid_.MakeWindow(0, 12), 5.0f, kNoEvent},
      {a, grid_.MakeWindow(0, 14), 5.0f, kNoEvent},
  };
  const auto events = RetrieveEvents(records, network(), grid_, params);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].size(), 3u);
}

TEST_F(EventRetrievalTest, StrictThresholdSemantics) {
  SensorId a, b, far;
  PickSensors(&a, &b, &far);
  // Adjacent windows have gap 0 < δt and must relate; windows whose gap is
  // exactly δt must NOT relate (Def. 1 uses strict <).
  const std::vector<AtypicalRecord> adjacent = {
      {a, grid_.MakeWindow(0, 10), 5.0f, kNoEvent},
      {a, grid_.MakeWindow(0, 11), 5.0f, kNoEvent},
  };
  EXPECT_EQ(RetrieveEvents(adjacent, network(), grid_, params_).size(), 1u);
  const std::vector<AtypicalRecord> at_threshold = {
      {a, grid_.MakeWindow(0, 10), 5.0f, kNoEvent},
      {a, grid_.MakeWindow(0, 12), 5.0f, kNoEvent},  // gap exactly 15
  };
  EXPECT_EQ(RetrieveEvents(at_threshold, network(), grid_, params_).size(),
            2u);
}

TEST_F(EventRetrievalTest, MicroClusterAggregatesPerDef4) {
  SensorId a, b, far;
  PickSensors(&a, &b, &far);
  const WindowId w = grid_.MakeWindow(2, 32);
  const std::vector<AtypicalRecord> records = {
      {a, w, 4.0f, 11},
      {b, w, 5.0f, 11},
      {a, w + 0, 0.5f, 11},  // duplicate (sensor, window) accumulates
  };
  const std::vector<AtypicalCluster> micros =
      RetrieveMicroClusters(records, network(), grid_, params_, &ids_);
  ASSERT_EQ(micros.size(), 1u);
  const AtypicalCluster& c = micros[0];
  EXPECT_DOUBLE_EQ(c.spatial.Get(a), 4.5);
  EXPECT_DOUBLE_EQ(c.spatial.Get(b), 5.0);
  EXPECT_DOUBLE_EQ(c.temporal.Get(w), 9.5);
  EXPECT_DOUBLE_EQ(c.severity(), 9.5);
  EXPECT_EQ(c.first_day, 2);
  EXPECT_EQ(c.last_day, 2);
  EXPECT_EQ(c.num_records, 3);
  EXPECT_EQ(c.dominant_true_event, 11u);
  EXPECT_EQ(c.micro_ids, std::vector<ClusterId>{c.id});
  EXPECT_TRUE(c.key_mode == TemporalKeyMode::kAbsolute);
}

TEST_F(EventRetrievalTest, SeverityInvariantOnGeneratedData) {
  const std::vector<AtypicalRecord> records =
      workload_->generator->GenerateMonthAtypical(0);
  const std::vector<AtypicalCluster> micros =
      RetrieveMicroClusters(records, network(), grid_, params_, &ids_);
  ASSERT_FALSE(micros.empty());
  double cluster_total = 0.0;
  for (const AtypicalCluster& c : micros) {
    EXPECT_NEAR(c.spatial.total(), c.temporal.total(), 1e-6);
    cluster_total += c.severity();
  }
  double record_total = 0.0;
  for (const AtypicalRecord& r : records)
    record_total += static_cast<double>(r.severity_minutes);
  EXPECT_NEAR(cluster_total, record_total, 1e-3);
}

TEST_F(EventRetrievalTest, EventsPartitionTheRecords) {
  const std::vector<AtypicalRecord> records =
      workload_->generator->GenerateMonthAtypical(0);
  const auto events = RetrieveEvents(records, network(), grid_, params_);
  std::vector<int> seen(records.size(), 0);
  for (const auto& event : events) {
    for (size_t idx : event) {
      ASSERT_LT(idx, records.size());
      ++seen[idx];
    }
  }
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(seen[i], 1) << "record " << i;
  }
}

TEST_F(EventRetrievalTest, EventsAreMaximal) {
  // No two records in different events may be directly related (otherwise
  // the events should have merged — Def. 3 condition 2).
  const std::vector<AtypicalRecord> records =
      workload_->generator->GenerateMonthAtypical(0);
  auto events = RetrieveEvents(records, network(), grid_, params_);
  // Cap the cost: check a subset of event pairs exhaustively.
  if (events.size() > 40) events.resize(40);
  for (size_t e1 = 0; e1 < events.size(); ++e1) {
    for (size_t e2 = e1 + 1; e2 < events.size(); ++e2) {
      for (size_t i : events[e1]) {
        for (size_t j : events[e2]) {
          const bool related =
              grid_.IntervalMinutes(records[i].window, records[j].window) <
                  params_.delta_t_minutes &&
              DistanceMiles(network().location(records[i].sensor),
                            network().location(records[j].sensor)) <
                  params_.delta_d_miles;
          ASSERT_FALSE(related)
              << "events " << e1 << " and " << e2 << " should have merged";
        }
      }
    }
  }
}

TEST_F(EventRetrievalTest, IndexedAndUnindexedAgree) {
  // Proposition 1: the index is a pure accelerator; results are identical.
  const std::vector<AtypicalRecord> records =
      workload_->generator->GenerateMonthAtypical(1);
  RetrievalParams with_index = params_;
  with_index.use_index = true;
  RetrievalParams without_index = params_;
  without_index.use_index = false;
  const auto a = RetrieveEvents(records, network(), grid_, with_index);
  const auto b = RetrieveEvents(records, network(), grid_, without_index);
  EXPECT_EQ(a, b);
}

TEST_F(EventRetrievalTest, IndexCutsNeighborChecks) {
  const std::vector<AtypicalRecord> records =
      workload_->generator->GenerateMonthAtypical(0);
  RetrievalStats indexed_stats;
  RetrievalStats brute_stats;
  RetrievalParams p = params_;
  p.use_index = true;
  RetrieveEvents(records, network(), grid_, p, &indexed_stats);
  p.use_index = false;
  RetrieveEvents(records, network(), grid_, p, &brute_stats);
  EXPECT_LT(indexed_stats.neighbor_checks, brute_stats.neighbor_checks / 10);
}

TEST_F(EventRetrievalTest, StatsArePopulated) {
  const std::vector<AtypicalRecord> records =
      workload_->generator->GenerateMonthAtypical(0);
  RetrievalStats stats;
  const auto micros = RetrieveMicroClusters(records, network(), grid_,
                                            params_, &ids_, &stats);
  EXPECT_EQ(stats.num_events, micros.size());
  EXPECT_EQ(stats.num_records, records.size());
  EXPECT_GT(stats.neighbor_checks, 0u);
  EXPECT_GE(stats.seconds, 0.0);
}

TEST_F(EventRetrievalTest, ClusterIdsAreUnique) {
  const std::vector<AtypicalRecord> records =
      workload_->generator->GenerateMonthAtypical(0);
  const auto micros =
      RetrieveMicroClusters(records, network(), grid_, params_, &ids_);
  std::set<ClusterId> ids;
  for (const AtypicalCluster& c : micros) ids.insert(c.id);
  EXPECT_EQ(ids.size(), micros.size());
}

}  // namespace
}  // namespace atypical
