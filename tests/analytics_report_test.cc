// The shared experiment context (analytics/report.h) used by every bench.
#include "analytics/report.h"

#include <gtest/gtest.h>

namespace atypical {
namespace analytics {
namespace {

TEST(DefaultParamsTest, MatchPaperDefaults) {
  const ForestParams forest = DefaultForestParams();
  EXPECT_DOUBLE_EQ(forest.retrieval.delta_d_miles, 1.5);
  EXPECT_EQ(forest.retrieval.delta_t_minutes, 15);
  EXPECT_TRUE(forest.retrieval.use_index);
  EXPECT_DOUBLE_EQ(forest.integration.delta_sim, 0.5);
  EXPECT_TRUE(forest.integration.g == BalanceFunction::kArithmeticMean);

  const SignificanceParams sig = DefaultSignificanceParams();
  EXPECT_DOUBLE_EQ(sig.delta_s, 0.05);
  EXPECT_TRUE(sig.unit == LengthUnit::kDays);

  const QueryEngineOptions options = DefaultEngineOptions();
  EXPECT_FALSE(options.post_check_significance);
  EXPECT_FALSE(options.use_materialized_levels);
}

TEST(BuildContextTest, BuildsAConsistentStack) {
  const auto ctx = BuildContext(WorkloadScale::kTiny, 2,
                                DefaultForestParams(), 103);
  ASSERT_EQ(ctx->monthly_atypical.size(), 2u);
  EXPECT_EQ(ctx->forest->Days().size(), 14u);
  EXPECT_EQ(ctx->days_per_month(), 7);

  // Cube total equals the records' total severity.
  double record_mass = 0.0;
  for (const auto& month : ctx->monthly_atypical) {
    for (const auto& r : month)
      record_mass += static_cast<double>(r.severity_minutes);
  }
  std::vector<RegionId> all;
  for (RegionId r = 0; r < static_cast<RegionId>(ctx->regions().num_regions());
       ++r) {
    all.push_back(r);
  }
  EXPECT_NEAR(ctx->atypical_cube.F(all, DayRange{0, 13}), record_mass, 1e-3);

  // Forest micro mass equals the records' total severity too.
  double micro_mass = 0.0;
  for (const auto& [id, severity] : ctx->forest->MicroSeverities({0, 13})) {
    micro_mass += severity;
  }
  EXPECT_NEAR(micro_mass, record_mass, 1e-3);
}

TEST(BuildContextTest, WholeAreaQueryCoversEverySensor) {
  const auto ctx = BuildContext(WorkloadScale::kTiny, 1,
                                DefaultForestParams(), 107);
  const AnalyticalQuery query = ctx->WholeAreaQuery(7);
  EXPECT_EQ(query.days.NumDays(), 7);
  EXPECT_EQ(ctx->network().SensorsInRect(query.area).size(),
            static_cast<size_t>(ctx->network().num_sensors()));
}

TEST(BuildContextTest, EngineIsFunctional) {
  const auto ctx = BuildContext(WorkloadScale::kTiny, 1,
                                DefaultForestParams(), 109);
  const QueryEngine engine = ctx->MakeEngine(DefaultEngineOptions());
  const QueryResult r =
      engine.Run(ctx->WholeAreaQuery(7), QueryStrategy::kAll);
  EXPECT_FALSE(r.clusters.empty());
}

TEST(BuildContextDeathTest, RejectsTooManyMonths) {
  EXPECT_DEATH(BuildContext(WorkloadScale::kTiny, 99), "Check failed");
}

}  // namespace
}  // namespace analytics
}  // namespace atypical
