// Red-zone computation and Property 5 (safe pruning).
#include "cube/red_zone.h"

#include <gtest/gtest.h>

#include "analytics/report.h"
#include "core/event_retrieval.h"
#include "gen/workload.h"

namespace atypical {
namespace cube {
namespace {

class RedZoneTest : public ::testing::Test {
 protected:
  RedZoneTest() : workload_(MakeWorkload(WorkloadScale::kTiny, 23)) {
    records_ = workload_->generator->GenerateMonthAtypical(0);
    grid_ = workload_->gen_config.time_grid;
    cube_ = BottomUpCube::FromAtypical(records_, *workload_->regions, grid_);
    for (RegionId r = 0;
         r < static_cast<RegionId>(workload_->regions->num_regions()); ++r) {
      all_regions_.push_back(r);
    }
  }

  std::unique_ptr<Workload> workload_;
  std::vector<AtypicalRecord> records_;
  TimeGrid grid_;
  BottomUpCube cube_;
  std::vector<RegionId> all_regions_;
};

TEST_F(RedZoneTest, ZeroThresholdMarksOccupiedRegions) {
  // Threshold 0 keeps exactly the regions with any severity (F >= 0 holds
  // for all, so with threshold epsilon every nonzero region qualifies).
  const auto red =
      ComputeRedZones(cube_, all_regions_, DayRange{0, 6}, 1e-9);
  for (RegionId r : all_regions_) {
    const double f = cube_.F({r}, DayRange{0, 6});
    const bool is_red = std::find(red.begin(), red.end(), r) != red.end();
    EXPECT_EQ(is_red, f >= 1e-9) << "region " << r;
  }
}

TEST_F(RedZoneTest, HugeThresholdMarksNothing) {
  EXPECT_TRUE(
      ComputeRedZones(cube_, all_regions_, DayRange{0, 6}, 1e12).empty());
}

TEST_F(RedZoneTest, ThresholdIsMonotone) {
  const auto low =
      ComputeRedZones(cube_, all_regions_, DayRange{0, 6}, 10.0);
  const auto high =
      ComputeRedZones(cube_, all_regions_, DayRange{0, 6}, 1000.0);
  EXPECT_GE(low.size(), high.size());
  for (RegionId r : high) {
    EXPECT_NE(std::find(low.begin(), low.end(), r), low.end());
  }
}

TEST_F(RedZoneTest, Property5NoSignificantClusterInColdRegion) {
  // For any region below the threshold, every cluster fully contained in it
  // must itself be below the threshold.
  ClusterIdGenerator ids(1);
  const auto micros =
      RetrieveMicroClusters(records_, *workload_->sensors, grid_,
                            analytics::DefaultForestParams().retrieval, &ids);
  const double threshold = 200.0;
  const auto red =
      ComputeRedZones(cube_, all_regions_, DayRange{0, 6}, threshold);
  const std::set<RegionId> red_set(red.begin(), red.end());
  for (const AtypicalCluster& c : micros) {
    // Is the cluster contained in a single cold region?
    std::set<RegionId> touched;
    for (const auto& e : c.spatial.entries()) {
      touched.insert(workload_->regions->RegionOfSensor(e.key));
    }
    if (touched.size() == 1 && !red_set.contains(*touched.begin())) {
      EXPECT_LT(c.severity(), threshold)
          << "cluster " << c.id << " contradicts Property 5";
    }
  }
}

TEST_F(RedZoneTest, KeepIntersectingRetainsBoundaryClusters) {
  ClusterIdGenerator ids(1);
  auto micros =
      RetrieveMicroClusters(records_, *workload_->sensors, grid_,
                            analytics::DefaultForestParams().retrieval, &ids);
  const size_t total = micros.size();
  const auto red =
      ComputeRedZones(cube_, all_regions_, DayRange{0, 6}, 150.0);
  const std::set<RegionId> red_set(red.begin(), red.end());

  const auto kept = FilterByRedZones(micros, red, *workload_->regions,
                                     RedZoneFilterMode::kKeepIntersecting);
  EXPECT_LE(kept.size(), total);
  // Exactly the clusters touching a red zone survive.
  size_t expected = 0;
  for (const AtypicalCluster& c : micros) {
    for (const auto& e : c.spatial.entries()) {
      if (red_set.contains(workload_->regions->RegionOfSensor(e.key))) {
        ++expected;
        break;
      }
    }
  }
  EXPECT_EQ(kept.size(), expected);
}

TEST_F(RedZoneTest, KeepContainedIsStricterThanIntersecting) {
  ClusterIdGenerator ids(1);
  const auto micros =
      RetrieveMicroClusters(records_, *workload_->sensors, grid_,
                            analytics::DefaultForestParams().retrieval, &ids);
  const auto red =
      ComputeRedZones(cube_, all_regions_, DayRange{0, 6}, 150.0);
  const auto intersecting = FilterByRedZones(
      micros, red, *workload_->regions, RedZoneFilterMode::kKeepIntersecting);
  const auto contained = FilterByRedZones(
      micros, red, *workload_->regions, RedZoneFilterMode::kKeepContained);
  EXPECT_LE(contained.size(), intersecting.size());
}

TEST_F(RedZoneTest, FilterKeepsFeaturesIntact) {
  // Survivors pass whole — severities must be unchanged.
  ClusterIdGenerator ids(1);
  const auto micros =
      RetrieveMicroClusters(records_, *workload_->sensors, grid_,
                            analytics::DefaultForestParams().retrieval, &ids);
  std::map<ClusterId, double> original;
  for (const AtypicalCluster& c : micros) original[c.id] = c.severity();
  const auto red =
      ComputeRedZones(cube_, all_regions_, DayRange{0, 6}, 150.0);
  const auto kept = FilterByRedZones(micros, red, *workload_->regions,
                                     RedZoneFilterMode::kKeepIntersecting);
  for (const AtypicalCluster& c : kept) {
    EXPECT_DOUBLE_EQ(c.severity(), original.at(c.id));
  }
}

TEST_F(RedZoneTest, NoRedZonesPrunesEverything) {
  ClusterIdGenerator ids(1);
  const auto micros =
      RetrieveMicroClusters(records_, *workload_->sensors, grid_,
                            analytics::DefaultForestParams().retrieval, &ids);
  const auto kept = FilterByRedZones(micros, {}, *workload_->regions,
                                     RedZoneFilterMode::kKeepIntersecting);
  EXPECT_TRUE(kept.empty());
}

}  // namespace
}  // namespace cube
}  // namespace atypical
