#include "util/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace atypical {
namespace {

TEST(TableTest, AlignedRendering) {
  Table t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer", "22"});
  const std::string out = t.ToAlignedString();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
  EXPECT_NE(out.find("|--------|-------|"), std::string::npos);
}

TEST(TableTest, NumericRowFormatting) {
  Table t({"x", "y"});
  t.AddNumericRow({1.23456, 2.0}, 2);
  EXPECT_EQ(t.rows()[0][0], "1.23");
  EXPECT_EQ(t.rows()[0][1], "2.00");
}

TEST(TableTest, CsvEscapesSpecialCells) {
  Table t({"a", "b"});
  t.AddRow({"plain", "with,comma"});
  t.AddRow({"quote\"inside", "line\nbreak"});
  const std::string csv = t.ToCsvString();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
  EXPECT_NE(csv.find("\"line\nbreak\""), std::string::npos);
}

TEST(TableTest, CsvRoundTripThroughFile) {
  Table t({"k", "v"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"beta", "2"});
  const std::string path = ::testing::TempDir() + "/table_test.csv";
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "k,v");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "alpha,1");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "beta,2");
  EXPECT_FALSE(std::getline(in, line));
  std::remove(path.c_str());
}

TEST(TableTest, WriteCsvToBadPathFails) {
  Table t({"a"});
  const Status s = t.WriteCsv("/nonexistent-dir-xyz/file.csv");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(TableTest, CountsRows) {
  Table t({"a"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({"1"});
  t.AddRow({"2"});
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableDeathTest, ArityMismatchDies) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "Check failed");
}

TEST(TableDeathTest, EmptyHeaderDies) {
  EXPECT_DEATH(Table t(std::vector<std::string>{}), "Check failed");
}

}  // namespace
}  // namespace atypical
