#include "storage/csv_io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "gen/workload.h"

namespace atypical {
namespace storage {
namespace {

class CsvIoTest : public ::testing::Test {
 protected:
  CsvIoTest() { path_ = ::testing::TempDir() + "/csv_io_test.csv"; }
  ~CsvIoTest() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& content) {
    std::ofstream out(path_, std::ios::trunc);
    out << content;
  }

  std::string path_;
};

TEST_F(CsvIoTest, AtypicalRoundTrip) {
  const std::vector<AtypicalRecord> records = {
      {1, 100, 4.5f, kNoEvent},
      {2, 101, 15.0f, kNoEvent},
      {3, 200, 0.5f, kNoEvent},
  };
  ASSERT_TRUE(WriteAtypicalCsv(records, path_).ok());
  const Result<std::vector<AtypicalRecord>> back = ReadAtypicalCsv(path_);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ((*back)[i].sensor, records[i].sensor);
    EXPECT_EQ((*back)[i].window, records[i].window);
    EXPECT_FLOAT_EQ((*back)[i].severity_minutes,
                    records[i].severity_minutes);
  }
}

TEST_F(CsvIoTest, ReadingsCsvHasHeaderAndRows) {
  const auto workload = MakeWorkload(WorkloadScale::kTiny, 5);
  Dataset ds = workload->generator->GenerateMonth(0);
  // Keep the file small.
  ds.mutable_readings().resize(10);
  ASSERT_TRUE(WriteReadingsCsv(ds, path_).ok());
  std::ifstream in(path_);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "sensor,window,speed_mph,occupancy,atypical_minutes");
  int rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 10);
}

TEST_F(CsvIoTest, RejectsWrongHeader) {
  WriteFile("foo,bar\n1,2\n");
  const auto r = ReadAtypicalCsv(path_);
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
}

TEST_F(CsvIoTest, RejectsMalformedRow) {
  WriteFile("sensor,window,severity_minutes\n1,2,3.0\nnot-a-number,5,1.0\n");
  const auto r = ReadAtypicalCsv(path_);
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(r.status().message().find(":3"), std::string::npos);
}

TEST_F(CsvIoTest, RejectsWrongFieldCount) {
  WriteFile("sensor,window,severity_minutes\n1,2\n");
  EXPECT_EQ(ReadAtypicalCsv(path_).status().code(), StatusCode::kDataLoss);
}

TEST_F(CsvIoTest, RejectsNegativeSeverity) {
  WriteFile("sensor,window,severity_minutes\n1,2,-3.0\n");
  EXPECT_EQ(ReadAtypicalCsv(path_).status().code(), StatusCode::kDataLoss);
}

TEST_F(CsvIoTest, EmptyFileRejected) {
  WriteFile("");
  EXPECT_EQ(ReadAtypicalCsv(path_).status().code(), StatusCode::kDataLoss);
}

TEST_F(CsvIoTest, SkipsBlankLines) {
  WriteFile("sensor,window,severity_minutes\n1,2,3.0\n\n4,5,6.0\n");
  const auto r = ReadAtypicalCsv(path_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 2u);
}

TEST_F(CsvIoTest, MissingFileIsIoError) {
  EXPECT_EQ(ReadAtypicalCsv("/no/such/file.csv").status().code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace storage
}  // namespace atypical
