#include "core/forest.h"

#include <gtest/gtest.h>

#include "analytics/report.h"
#include "gen/workload.h"

namespace atypical {
namespace {

class ForestTest : public ::testing::Test {
 protected:
  ForestTest()
      : workload_(MakeWorkload(WorkloadScale::kTiny, 17)),
        forest_(workload_->sensors.get(), workload_->gen_config.time_grid,
                analytics::DefaultForestParams()) {
    records_ = workload_->generator->GenerateMonthAtypical(0);
  }

  std::unique_ptr<Workload> workload_;
  AtypicalForest forest_;
  std::vector<AtypicalRecord> records_;
};

TEST_F(ForestTest, AddRecordsGroupsByDay) {
  forest_.AddRecords(records_);
  const std::vector<int> days = forest_.Days();
  EXPECT_EQ(days.size(), 7u);  // kTiny months are 7 days
  for (int day : days) {
    EXPECT_TRUE(forest_.HasDay(day));
    EXPECT_FALSE(forest_.MicrosOfDay(day).empty());
  }
  EXPECT_GT(forest_.num_micro_clusters(), 7u);
}

TEST_F(ForestTest, MicroSeverityMatchesRecordMass) {
  forest_.AddRecords(records_);
  double micro_total = 0.0;
  for (int day : forest_.Days()) {
    for (const AtypicalCluster& c : forest_.MicrosOfDay(day)) {
      micro_total += c.severity();
    }
  }
  double record_total = 0.0;
  for (const AtypicalRecord& r : records_)
    record_total += static_cast<double>(r.severity_minutes);
  EXPECT_NEAR(micro_total, record_total, 1e-3);
}

TEST_F(ForestTest, MicrosInRangeRespectsBounds) {
  forest_.AddRecords(records_);
  const auto all = forest_.MicrosInRange(DayRange{0, 6});
  EXPECT_EQ(all.size(), forest_.num_micro_clusters());
  const auto first_two = forest_.MicrosInRange(DayRange{0, 1});
  EXPECT_LT(first_two.size(), all.size());
  for (const AtypicalCluster* c : first_two) {
    EXPECT_LE(c->first_day, 1);
  }
  EXPECT_TRUE(forest_.MicrosInRange(DayRange{100, 200}).empty());
}

TEST_F(ForestTest, MicroSeveritiesMapMatchesClusters) {
  forest_.AddRecords(records_);
  const auto severities = forest_.MicroSeverities(DayRange{0, 6});
  EXPECT_EQ(severities.size(), forest_.num_micro_clusters());
  for (const AtypicalCluster* c : forest_.MicrosInRange(DayRange{0, 6})) {
    const auto it = severities.find(c->id);
    ASSERT_NE(it, severities.end());
    EXPECT_DOUBLE_EQ(it->second, c->severity());
  }
}

TEST_F(ForestTest, MaterializeWeeksBuildsMacros) {
  forest_.AddRecords(records_);
  const size_t built = forest_.MaterializeWeeks();
  EXPECT_GT(built, 0u);
  ASSERT_TRUE(forest_.HasWeek(0));
  const auto& macros = forest_.MacrosOfWeek(0);
  EXPECT_EQ(macros.size(), built);
  // Macro severity mass equals micro mass (nothing lost in integration).
  double macro_total = 0.0;
  for (const AtypicalCluster& c : macros) {
    macro_total += c.severity();
    EXPECT_TRUE(c.key_mode == TemporalKeyMode::kTimeOfDay);
  }
  double record_total = 0.0;
  for (const AtypicalRecord& r : records_)
    record_total += static_cast<double>(r.severity_minutes);
  EXPECT_NEAR(macro_total, record_total, 1e-3);
  // Integration happened: fewer macros than micros.
  EXPECT_LT(macros.size(), forest_.num_micro_clusters());
}

TEST_F(ForestTest, MaterializeMonthsBuildsTreeWithChildren) {
  forest_.AddRecords(records_);
  forest_.MaterializeMonths(workload_->gen_config.days_per_month);
  ASSERT_TRUE(forest_.HasMonth(0));
  bool any_merged = false;
  for (const AtypicalCluster& c : forest_.MacrosOfMonth(0)) {
    if (c.num_micros() > 1) {
      any_merged = true;
      // A merged macro records its immediate children (Fig. 10 tree).
      EXPECT_NE(c.left_child, 0u);
      EXPECT_NE(c.right_child, 0u);
      EXPECT_NE(c.left_child, c.right_child);
    }
  }
  EXPECT_TRUE(any_merged);
}

TEST_F(ForestTest, RematerializationReplacesLevel) {
  forest_.AddRecords(records_);
  const size_t first = forest_.MaterializeWeeks();
  const size_t second = forest_.MaterializeWeeks();
  EXPECT_EQ(first, second);
  EXPECT_EQ(forest_.MacrosOfWeek(0).size(), second);
}

TEST_F(ForestTest, MultipleMonthsSpanWeeks) {
  forest_.AddRecords(records_);
  forest_.AddRecords(workload_->generator->GenerateMonthAtypical(1));
  EXPECT_EQ(forest_.Days().size(), 14u);
  forest_.MaterializeWeeks();
  EXPECT_TRUE(forest_.HasWeek(0));
  EXPECT_TRUE(forest_.HasWeek(1));
  EXPECT_FALSE(forest_.HasWeek(2));
}

TEST_F(ForestTest, ByteSizeGrowsWithData) {
  forest_.AddRecords(records_);
  const uint64_t before = forest_.ByteSize();
  EXPECT_GT(before, 0u);
  forest_.AddRecords(workload_->generator->GenerateMonthAtypical(1));
  EXPECT_GT(forest_.ByteSize(), before);
}

TEST_F(ForestTest, IdsAreSharedAndUnique) {
  forest_.AddRecords(records_);
  forest_.MaterializeWeeks();
  std::set<ClusterId> ids;
  for (int day : forest_.Days()) {
    for (const AtypicalCluster& c : forest_.MicrosOfDay(day)) {
      EXPECT_TRUE(ids.insert(c.id).second);
    }
  }
  for (const AtypicalCluster& c : forest_.MacrosOfWeek(0)) {
    // Macros that merged nothing keep their micro's id; merged ones are new.
    if (c.num_micros() > 1) {
      EXPECT_TRUE(ids.insert(c.id).second);
    }
  }
}

TEST_F(ForestTest, DuplicateDayReplayAppends) {
  // Replaying a batch for days the forest already holds must append, not
  // crash (the documented late-batch merge policy).
  forest_.AddRecords(records_);
  const size_t micros_before = forest_.num_micro_clusters();
  forest_.AddRecords(records_);
  EXPECT_EQ(forest_.Days().size(), 7u);
  EXPECT_EQ(forest_.num_micro_clusters(), 2 * micros_before);
}

TEST_F(ForestTest, OverlappingBatchesMergeIntoExistingDays) {
  // Split the month into two batches that both contain day-3 records: the
  // second batch's day 3 must land as extra micro-clusters on the existing
  // leaf, with severity mass conserved across the whole replay.
  const TimeGrid& grid = workload_->gen_config.time_grid;
  std::vector<AtypicalRecord> first;
  std::vector<AtypicalRecord> second;
  bool flip = false;
  for (const AtypicalRecord& r : records_) {
    const int day = grid.DayOfWindow(r.window);
    if (day < 3) {
      first.push_back(r);
    } else if (day > 3) {
      second.push_back(r);
    } else {
      ((flip = !flip) ? first : second).push_back(r);
    }
  }
  ASSERT_FALSE(first.empty());
  ASSERT_FALSE(second.empty());

  forest_.AddRecords(first);
  ASSERT_TRUE(forest_.HasDay(3));
  const size_t day3_before = forest_.MicrosOfDay(3).size();

  forest_.AddRecords(second);  // pre-fix: CHECK "already added" aborts here
  EXPECT_EQ(forest_.Days().size(), 7u);
  EXPECT_GT(forest_.MicrosOfDay(3).size(), day3_before);

  double micro_total = 0.0;
  size_t micro_count = 0;
  for (int day : forest_.Days()) {
    micro_count += forest_.MicrosOfDay(day).size();
    for (const AtypicalCluster& c : forest_.MicrosOfDay(day)) {
      micro_total += c.severity();
    }
  }
  EXPECT_EQ(micro_count, forest_.num_micro_clusters());
  double record_total = 0.0;
  for (const AtypicalRecord& r : records_)
    record_total += static_cast<double>(r.severity_minutes);
  EXPECT_NEAR(micro_total, record_total, 1e-3);
}

TEST_F(ForestTest, InstallDayStaysStrictOnDuplicates) {
  // Unlike AddRecords, InstallDay hands over pre-built micros and keeps its
  // exactly-once contract.
  forest_.AddRecords(records_);
  EXPECT_DEATH(forest_.InstallDay(0, {}), "already present");
}

TEST_F(ForestTest, DeathOnWrongDayRecords) {
  std::vector<AtypicalRecord> wrong = {records_.front()};
  const int actual_day =
      workload_->gen_config.time_grid.DayOfWindow(wrong[0].window);
  EXPECT_DEATH(forest_.AddDay(actual_day + 1, wrong), "Check failed");
}

TEST_F(ForestTest, DeathOnMissingDayAccess) {
  EXPECT_DEATH((void)forest_.MicrosOfDay(0), "no micro-clusters");
  EXPECT_DEATH((void)forest_.MacrosOfWeek(0), "not materialized");
  EXPECT_DEATH((void)forest_.MacrosOfMonth(0), "not materialized");
}

}  // namespace
}  // namespace atypical
