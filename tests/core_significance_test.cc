#include "core/significance.h"

#include <gtest/gtest.h>

namespace atypical {
namespace {

TEST(LengthOfTest, UnitsScaleAsExpected) {
  const TimeGrid grid(15);
  const DayRange week{0, 6};
  EXPECT_DOUBLE_EQ(LengthOf(week, grid, LengthUnit::kDays), 7.0);
  EXPECT_DOUBLE_EQ(LengthOf(week, grid, LengthUnit::kMinutes), 7.0 * 1440);
  EXPECT_DOUBLE_EQ(LengthOf(week, grid, LengthUnit::kWindows), 7.0 * 96);
}

TEST(LengthOfTest, EmptyRangeIsZero) {
  const TimeGrid grid(15);
  EXPECT_DOUBLE_EQ(LengthOf(DayRange{3, 2}, grid, LengthUnit::kDays), 0.0);
}

TEST(SignificanceThresholdTest, Formula) {
  // δs · length(T) · N with the paper defaults (δs = 5%, day units).
  SignificanceParams params;
  const TimeGrid grid(15);
  EXPECT_DOUBLE_EQ(
      SignificanceThreshold(params, DayRange{0, 13}, grid, 450),
      0.05 * 14 * 450);
}

TEST(SignificanceThresholdTest, ScalesLinearlyInEachFactor) {
  SignificanceParams params;
  params.delta_s = 0.1;
  const TimeGrid grid(15);
  const double base = SignificanceThreshold(params, DayRange{0, 6}, grid, 100);
  EXPECT_DOUBLE_EQ(SignificanceThreshold(params, DayRange{0, 13}, grid, 100),
                   2 * base);
  EXPECT_DOUBLE_EQ(SignificanceThreshold(params, DayRange{0, 6}, grid, 200),
                   2 * base);
  params.delta_s = 0.2;
  EXPECT_DOUBLE_EQ(SignificanceThreshold(params, DayRange{0, 6}, grid, 100),
                   2 * base);
}

TEST(IsSignificantTest, StrictInequality) {
  AtypicalCluster c;
  c.spatial.Add(1, 100.0);
  EXPECT_TRUE(IsSignificant(c, 99.9));
  EXPECT_FALSE(IsSignificant(c, 100.0));  // Def. 5 uses strict >
  EXPECT_FALSE(IsSignificant(c, 100.1));
}

TEST(FilterSignificantTest, KeepsOrderAndFilters) {
  std::vector<AtypicalCluster> clusters(3);
  clusters[0].id = 1;
  clusters[0].spatial.Add(1, 50.0);
  clusters[1].id = 2;
  clusters[1].spatial.Add(1, 150.0);
  clusters[2].id = 3;
  clusters[2].spatial.Add(1, 300.0);
  const auto sig = FilterSignificant(clusters, 100.0);
  ASSERT_EQ(sig.size(), 2u);
  EXPECT_EQ(sig[0].id, 2u);
  EXPECT_EQ(sig[1].id, 3u);
}

TEST(LengthUnitNameTest, Names) {
  EXPECT_STREQ(LengthUnitName(LengthUnit::kDays), "days");
  EXPECT_STREQ(LengthUnitName(LengthUnit::kMinutes), "minutes");
  EXPECT_STREQ(LengthUnitName(LengthUnit::kWindows), "windows");
}

TEST(SignificanceDeathTest, NegativeInputsDie) {
  SignificanceParams params;
  params.delta_s = -0.1;
  const TimeGrid grid(15);
  EXPECT_DEATH(
      (void)SignificanceThreshold(params, DayRange{0, 6}, grid, 100),
      "Check failed");
}

}  // namespace
}  // namespace atypical
