// IncrementalIntegrator::Finalize() must be a bit-identical drop-in for the
// batch Algorithm 3 drivers — same partition, same features, same cluster
// ids — no matter how the micro-clusters arrived.  The online state itself
// is only guaranteed to be *a* fixpoint (no alive pair above δsim), not the
// batch partition; these tests pin both contracts, plus the budget, scratch
// id and Reset() semantics.
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/incremental_integration.h"
#include "core/integration.h"
#include "core/parallel_integration.h"
#include "core/similarity.h"
#include "util/random.h"

namespace atypical {
namespace {

std::vector<AtypicalCluster> RandomMicros(int count, uint32_t key_space,
                                          uint64_t seed) {
  Rng rng(seed);
  std::vector<AtypicalCluster> out;
  for (int i = 0; i < count; ++i) {
    AtypicalCluster c;
    // Placeholder micro identity (a builder would hand out scratch ids);
    // both Renumber() and Finalize() overwrite it.
    c.id = static_cast<ClusterId>(i + 1);
    c.micro_ids = {c.id};
    c.first_day = static_cast<int>(rng.UniformInt(uint64_t{30}));
    c.last_day = c.first_day;
    c.num_records = 1 + static_cast<int64_t>(rng.UniformInt(uint64_t{40}));
    const int n = 1 + static_cast<int>(rng.UniformInt(uint64_t{8}));
    for (int j = 0; j < n; ++j) {
      const double severity = rng.Uniform(0.5, 15.0);
      c.spatial.Add(static_cast<uint32_t>(rng.UniformInt(uint64_t{key_space})),
                    severity);
      c.temporal.Add(
          static_cast<uint32_t>(rng.UniformInt(uint64_t{key_space})),
          severity);
    }
    out.push_back(std::move(c));
  }
  return out;
}

// Assigns ids in vector order from `ids` — exactly what batch micro-cluster
// construction does, and what Finalize() replays in first-seq order.
void Renumber(std::vector<AtypicalCluster>* micros, ClusterIdGenerator* ids) {
  for (AtypicalCluster& m : *micros) {
    m.id = ids->Next();
    m.micro_ids = {m.id};
  }
}

void ExpectIdentical(const std::vector<AtypicalCluster>& batch,
                     const std::vector<AtypicalCluster>& streamed) {
  ASSERT_EQ(batch.size(), streamed.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const AtypicalCluster& b = batch[i];
    const AtypicalCluster& s = streamed[i];
    EXPECT_EQ(b.id, s.id) << "cluster " << i;
    EXPECT_EQ(b.spatial, s.spatial) << "cluster " << i;
    EXPECT_EQ(b.temporal, s.temporal) << "cluster " << i;
    EXPECT_EQ(b.key_mode, s.key_mode) << "cluster " << i;
    EXPECT_EQ(b.micro_ids, s.micro_ids) << "cluster " << i;
    EXPECT_EQ(b.left_child, s.left_child) << "cluster " << i;
    EXPECT_EQ(b.right_child, s.right_child) << "cluster " << i;
    EXPECT_EQ(b.first_day, s.first_day) << "cluster " << i;
    EXPECT_EQ(b.last_day, s.last_day) << "cluster " << i;
    EXPECT_EQ(b.num_records, s.num_records) << "cluster " << i;
  }
}

// Feeds `micros` in order (seq = feed position) and finalizes.
std::vector<AtypicalCluster> StreamAndFinalize(
    const std::vector<AtypicalCluster>& micros, const IntegrationParams& params,
    ClusterIdGenerator* ids, IntegrationStats* stats = nullptr,
    std::vector<AtypicalCluster>* canonical_micros = nullptr) {
  IncrementalIntegrator integrator(params, ids);
  for (size_t i = 0; i < micros.size(); ++i) {
    integrator.Accept(micros[i], i);
  }
  EXPECT_EQ(integrator.num_micros(), micros.size());
  return integrator.Finalize(stats, canonical_micros);
}

struct EquivalenceCase {
  BalanceFunction g;
  double delta_sim;
  uint64_t seed;
  bool use_index;
  bool use_fast_path;
};

class IncrementalEquivalenceTest
    : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(IncrementalEquivalenceTest, FinalizeBitIdenticalToBatch) {
  const EquivalenceCase c = GetParam();
  std::vector<AtypicalCluster> micros = RandomMicros(120, 16, c.seed);

  IntegrationParams params;
  params.g = c.g;
  params.delta_sim = c.delta_sim;
  params.use_candidate_index = c.use_index;
  params.use_similarity_fast_path = c.use_fast_path;

  // Batch: number the micros, then integrate with the same generator — the
  // id sequence a real pipeline (RetrieveMicroClusters + IntegrateClusters)
  // produces.
  std::vector<AtypicalCluster> batch_micros = micros;
  ClusterIdGenerator batch_ids(1);
  Renumber(&batch_micros, &batch_ids);
  IntegrationStats batch_stats;
  const auto batch =
      IntegrateClusters(batch_micros, params, &batch_ids, &batch_stats);

  ClusterIdGenerator inc_ids(1);
  IntegrationStats inc_stats;
  std::vector<AtypicalCluster> canonical;
  const auto streamed =
      StreamAndFinalize(micros, params, &inc_ids, &inc_stats, &canonical);

  ExpectIdentical(batch, streamed);
  ExpectIdentical(batch_micros, canonical);
  EXPECT_EQ(batch_stats.merges, inc_stats.merges);
  EXPECT_EQ(batch_stats.similarity_checks, inc_stats.similarity_checks);
  EXPECT_EQ(batch_stats.fixpoint_rounds, inc_stats.fixpoint_rounds);
  EXPECT_EQ(batch_stats.converged, inc_stats.converged);
}

std::vector<EquivalenceCase> MakeCases() {
  std::vector<EquivalenceCase> cases;
  uint64_t seed = 17;
  for (const BalanceFunction g :
       {BalanceFunction::kMax, BalanceFunction::kArithmeticMean,
        BalanceFunction::kHarmonicMean}) {
    for (const double delta_sim : {0.25, 0.5}) {
      for (const bool use_index : {true, false}) {
        for (const bool use_fast_path : {true, false}) {
          cases.push_back(
              EquivalenceCase{g, delta_sim, seed++, use_index, use_fast_path});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, IncrementalEquivalenceTest,
                         ::testing::ValuesIn(MakeCases()));

TEST(IncrementalIntegrationTest, MatchesParallelBatchDriver) {
  std::vector<AtypicalCluster> micros = RandomMicros(100, 14, 99);
  IntegrationParams params;

  std::vector<AtypicalCluster> batch_micros = micros;
  ClusterIdGenerator parallel_ids(1);
  Renumber(&batch_micros, &parallel_ids);
  ParallelIntegrationParams pparams;
  pparams.base = params;
  pparams.num_threads = 3;
  pparams.min_shard_candidates = 4;
  const auto parallel =
      ParallelIntegrateClusters(batch_micros, pparams, &parallel_ids);

  ClusterIdGenerator inc_ids(1);
  ExpectIdentical(parallel, StreamAndFinalize(micros, params, &inc_ids));
}

TEST(IncrementalIntegrationTest, PermutedArrivalsStayEquivalent) {
  std::vector<AtypicalCluster> micros = RandomMicros(90, 12, 4242);
  IntegrationParams params;

  Rng rng(314159);
  for (int round = 0; round < 4; ++round) {
    for (size_t i = micros.size(); i > 1; --i) {
      std::swap(micros[i - 1], micros[rng.UniformInt(uint64_t{i})]);
    }
    std::vector<AtypicalCluster> batch_micros = micros;
    ClusterIdGenerator batch_ids(1);
    Renumber(&batch_micros, &batch_ids);
    const auto batch = IntegrateClusters(batch_micros, params, &batch_ids);

    ClusterIdGenerator inc_ids(1);
    ExpectIdentical(batch, StreamAndFinalize(micros, params, &inc_ids));
  }
}

TEST(IncrementalIntegrationTest, BudgetTrippedPartialMatchesBatch) {
  std::vector<AtypicalCluster> micros = RandomMicros(120, 8, 2024);
  IntegrationParams params;
  params.delta_sim = 0.25;  // merge-heavy so the budget actually bites
  params.max_fixpoint_rounds = 3;

  std::vector<AtypicalCluster> batch_micros = micros;
  ClusterIdGenerator batch_ids(1);
  Renumber(&batch_micros, &batch_ids);
  IntegrationStats batch_stats;
  const auto batch =
      IntegrateClusters(batch_micros, params, &batch_ids, &batch_stats);
  ASSERT_FALSE(batch_stats.converged);

  ClusterIdGenerator inc_ids(1);
  IntegrationStats inc_stats;
  IncrementalIntegrator integrator(params, &inc_ids);
  for (size_t i = 0; i < micros.size(); ++i) integrator.Accept(micros[i], i);
  // The per-arrival cascades are budget-capped too; the partial online
  // partition must still conserve severity mass.
  double online_mass = 0.0;
  for (const auto& macro : integrator.MacroSnapshot()) {
    online_mass += macro.severity();
  }
  double input_mass = 0.0;
  for (const auto& m : micros) input_mass += m.severity();
  EXPECT_NEAR(online_mass, input_mass, 1e-6);

  const auto streamed = integrator.Finalize(&inc_stats);
  EXPECT_FALSE(inc_stats.converged);
  ExpectIdentical(batch, streamed);
}

TEST(IncrementalIntegrationTest, OnlineBudgetTripLatchesConvergedFalse) {
  // max_fixpoint_rounds applies per arrival online; with a 1-round budget
  // any arrival that merges trips it before confirming its fixpoint, so the
  // online convergence flag must latch false — and Finalize() must still
  // match the batch run under the same (globally applied) budget.
  std::vector<AtypicalCluster> micros = RandomMicros(120, 8, 2025);
  IntegrationParams params;
  params.delta_sim = 0.25;
  params.max_fixpoint_rounds = 1;

  std::vector<AtypicalCluster> batch_micros = micros;
  ClusterIdGenerator batch_ids(1);
  Renumber(&batch_micros, &batch_ids);
  const auto batch = IntegrateClusters(batch_micros, params, &batch_ids);

  ClusterIdGenerator inc_ids(1);
  IncrementalIntegrator integrator(params, &inc_ids);
  for (size_t i = 0; i < micros.size(); ++i) integrator.Accept(micros[i], i);
  EXPECT_GT(integrator.online_stats().budget_trips, 0u);
  EXPECT_FALSE(integrator.online_stats().converged);
  ExpectIdentical(batch, integrator.Finalize());
}

TEST(IncrementalIntegrationTest, OnlineStateIsAFixpointAfterEveryArrival) {
  std::vector<AtypicalCluster> micros = RandomMicros(60, 10, 77);
  IntegrationParams params;
  ClusterIdGenerator ids(1);
  IncrementalIntegrator integrator(params, &ids);
  double fed_mass = 0.0;
  for (size_t i = 0; i < micros.size(); ++i) {
    integrator.Accept(micros[i], i);
    fed_mass += micros[i].severity();
  }
  ASSERT_TRUE(integrator.online_stats().converged);
  const auto snapshot = integrator.MacroSnapshot();
  EXPECT_EQ(snapshot.size(), integrator.num_macros());
  double snapshot_mass = 0.0;
  for (const auto& macro : snapshot) snapshot_mass += macro.severity();
  EXPECT_NEAR(snapshot_mass, fed_mass, 1e-6);
  for (size_t i = 0; i < snapshot.size(); ++i) {
    for (size_t j = i + 1; j < snapshot.size(); ++j) {
      ASSERT_LE(Similarity(snapshot[i], snapshot[j], params.g),
                params.delta_sim);
    }
  }
}

TEST(IncrementalIntegrationTest, ScratchIdsNeverTouchTheRealGenerator) {
  std::vector<AtypicalCluster> micros = RandomMicros(40, 6, 5);
  IntegrationParams params;
  params.delta_sim = 0.25;
  ClusterIdGenerator ids(1);
  IncrementalIntegrator integrator(params, &ids);
  for (size_t i = 0; i < micros.size(); ++i) integrator.Accept(micros[i], i);
  ASSERT_GT(integrator.online_stats().online_merges, 0u)
      << "workload too sparse to exercise provisional merge ids";
  for (const auto& macro : integrator.MacroSnapshot()) {
    EXPECT_GE(macro.id, ClusterId{1} << 40) << "snapshot ids are provisional";
  }
  // The real sequence starts only at Finalize: first canonical micro is 1.
  std::vector<AtypicalCluster> canonical;
  integrator.Finalize(nullptr, &canonical);
  ASSERT_FALSE(canonical.empty());
  EXPECT_EQ(canonical.front().id, 1u);
}

TEST(IncrementalIntegrationTest, ResetServesASecondCycle) {
  const auto day1 = RandomMicros(50, 8, 21);
  const auto day2 = RandomMicros(70, 8, 22);
  IntegrationParams params;

  // Batch reference: one generator spanning both days, like a forest's.
  ClusterIdGenerator batch_ids(1);
  std::vector<AtypicalCluster> b1 = day1;
  Renumber(&b1, &batch_ids);
  const auto batch1 = IntegrateClusters(b1, params, &batch_ids);
  std::vector<AtypicalCluster> b2 = day2;
  Renumber(&b2, &batch_ids);
  const auto batch2 = IntegrateClusters(b2, params, &batch_ids);

  ClusterIdGenerator inc_ids(1);
  IncrementalIntegrator integrator(params, &inc_ids);
  for (size_t i = 0; i < day1.size(); ++i) integrator.Accept(day1[i], i);
  ExpectIdentical(batch1, integrator.Finalize());
  integrator.Reset();
  EXPECT_EQ(integrator.num_micros(), 0u);
  EXPECT_EQ(integrator.num_macros(), 0u);
  for (size_t i = 0; i < day2.size(); ++i) integrator.Accept(day2[i], i);
  ExpectIdentical(batch2, integrator.Finalize());
}

TEST(IncrementalIntegrationTest, EmptyFinalize) {
  IntegrationParams params;
  ClusterIdGenerator ids(1);
  IncrementalIntegrator integrator(params, &ids);
  IntegrationStats stats;
  EXPECT_TRUE(integrator.Finalize(&stats).empty());
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.merges, 0u);
}

TEST(IncrementalIntegrationDeathTest, AcceptAfterFinalizeDies) {
  IntegrationParams params;
  ClusterIdGenerator ids(1);
  IncrementalIntegrator integrator(params, &ids);
  const auto micros = RandomMicros(1, 4, 1);
  integrator.Accept(micros[0], 0);
  integrator.Finalize();
  EXPECT_DEATH(integrator.Accept(micros[0], 1), "Accept after Finalize");
}

}  // namespace
}  // namespace atypical
