#include "storage/cluster_io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "analytics/report.h"
#include "gen/workload.h"
#include "util/logging.h"

namespace atypical {
namespace storage {
namespace {

class ClusterIoTest : public ::testing::Test {
 protected:
  ClusterIoTest()
      : workload_(MakeWorkload(WorkloadScale::kTiny, 73)),
        grid_(workload_->gen_config.time_grid),
        params_(analytics::DefaultForestParams()) {
    path_ = ::testing::TempDir() + "/cluster_io_test.atypcf";
  }
  ~ClusterIoTest() override { std::remove(path_.c_str()); }

  AtypicalForest BuildForest(int months) {
    AtypicalForest forest(workload_->sensors.get(), grid_, params_);
    for (int m = 0; m < months; ++m) {
      forest.AddRecords(workload_->generator->GenerateMonthAtypical(m));
    }
    return forest;
  }

  static void ExpectClustersEqual(const AtypicalCluster& a,
                                  const AtypicalCluster& b) {
    EXPECT_EQ(a.id, b.id);
    EXPECT_TRUE(a.key_mode == b.key_mode);
    EXPECT_EQ(a.first_day, b.first_day);
    EXPECT_EQ(a.last_day, b.last_day);
    EXPECT_EQ(a.num_records, b.num_records);
    EXPECT_EQ(a.dominant_true_event, b.dominant_true_event);
    EXPECT_EQ(a.left_child, b.left_child);
    EXPECT_EQ(a.right_child, b.right_child);
    EXPECT_EQ(a.micro_ids, b.micro_ids);
    EXPECT_EQ(a.spatial.entries(), b.spatial.entries());
    EXPECT_EQ(a.temporal.entries(), b.temporal.entries());
  }

  std::unique_ptr<Workload> workload_;
  TimeGrid grid_;
  ForestParams params_;
  std::string path_;
};

TEST_F(ClusterIoTest, GroupsRoundTripExactly) {
  AtypicalForest forest = BuildForest(1);
  std::vector<ClusterGroup> groups;
  for (int day : forest.Days()) {
    groups.push_back(ClusterGroup{day, forest.MicrosOfDay(day)});
  }
  const Result<uint64_t> bytes = WriteClusterGroups(groups, path_);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  EXPECT_GT(*bytes, 0u);

  const Result<std::vector<ClusterGroup>> back = ReadClusterGroups(path_);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    EXPECT_EQ((*back)[g].tag, groups[g].tag);
    ASSERT_EQ((*back)[g].clusters.size(), groups[g].clusters.size());
    for (size_t c = 0; c < groups[g].clusters.size(); ++c) {
      ExpectClustersEqual((*back)[g].clusters[c], groups[g].clusters[c]);
    }
  }
}

TEST_F(ClusterIoTest, ForestRoundTripsWithMaterializedLevels) {
  AtypicalForest forest = BuildForest(2);
  forest.MaterializeWeeks();
  forest.MaterializeMonths(workload_->gen_config.days_per_month);
  ASSERT_TRUE(SaveForest(forest, path_).ok());

  Result<AtypicalForest> loaded =
      LoadForest(path_, workload_->sensors.get(), grid_, params_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->Days(), forest.Days());
  EXPECT_EQ(loaded->num_micro_clusters(), forest.num_micro_clusters());
  EXPECT_EQ(loaded->MaterializedWeeks(), forest.MaterializedWeeks());
  EXPECT_EQ(loaded->MaterializedMonths(), forest.MaterializedMonths());
  for (int day : forest.Days()) {
    ASSERT_EQ(loaded->MicrosOfDay(day).size(), forest.MicrosOfDay(day).size());
    for (size_t i = 0; i < forest.MicrosOfDay(day).size(); ++i) {
      ExpectClustersEqual(loaded->MicrosOfDay(day)[i],
                          forest.MicrosOfDay(day)[i]);
    }
  }
  for (int week : forest.MaterializedWeeks()) {
    ASSERT_EQ(loaded->MacrosOfWeek(week).size(),
              forest.MacrosOfWeek(week).size());
  }
}

TEST_F(ClusterIoTest, LoadedForestKeepsGeneratingFreshIds) {
  AtypicalForest forest = BuildForest(1);
  ASSERT_TRUE(SaveForest(forest, path_).ok());
  Result<AtypicalForest> loaded =
      LoadForest(path_, workload_->sensors.get(), grid_, params_);
  ASSERT_TRUE(loaded.ok());
  ClusterId max_id = 0;
  for (int day : loaded->Days()) {
    for (const AtypicalCluster& c : loaded->MicrosOfDay(day)) {
      max_id = std::max(max_id, c.id);
    }
  }
  EXPECT_GT(loaded->ids()->Next(), max_id);
}

TEST_F(ClusterIoTest, LoadedForestAnswersQueriesLikeTheOriginal) {
  AtypicalForest forest = BuildForest(2);
  ASSERT_TRUE(SaveForest(forest, path_).ok());
  Result<AtypicalForest> loaded =
      LoadForest(path_, workload_->sensors.get(), grid_, params_);
  ASSERT_TRUE(loaded.ok());

  cube::BottomUpCube cube;
  for (int m = 0; m < 2; ++m) {
    cube.MergeFrom(cube::BottomUpCube::FromAtypical(
        workload_->generator->GenerateMonthAtypical(m), *workload_->regions,
        grid_));
  }
  AnalyticalQuery query;
  query.area = workload_->sensors->bounds();
  query.days = DayRange{0, 13};
  const QueryEngineOptions options = analytics::DefaultEngineOptions();
  const QueryResult a =
      QueryEngine(workload_->sensors.get(), workload_->regions.get(), &forest,
                  &cube, options)
          .Run(query, QueryStrategy::kGuided);
  const QueryResult b =
      QueryEngine(workload_->sensors.get(), workload_->regions.get(),
                  &*loaded, &cube, options)
          .Run(query, QueryStrategy::kGuided);
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  double mass_a = 0.0;
  double mass_b = 0.0;
  for (const auto& c : a.clusters) mass_a += c.severity();
  for (const auto& c : b.clusters) mass_b += c.severity();
  EXPECT_NEAR(mass_a, mass_b, 1e-6);
}

TEST_F(ClusterIoTest, EmptyGroupListRoundTrips) {
  ASSERT_TRUE(WriteClusterGroups({}, path_).ok());
  const auto back = ReadClusterGroups(path_);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST_F(ClusterIoTest, CorruptionIsDetected) {
  AtypicalForest forest = BuildForest(1);
  ASSERT_TRUE(SaveForest(forest, path_).ok());
  std::ifstream in(path_, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  bytes[bytes.size() / 2] ^= 0x20;
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  EXPECT_EQ(ReadClusterGroups(path_).status().code(), StatusCode::kDataLoss);
}

TEST_F(ClusterIoTest, TruncationIsDetected) {
  AtypicalForest forest = BuildForest(1);
  ASSERT_TRUE(SaveForest(forest, path_).ok());
  std::ifstream in(path_, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  bytes.resize(bytes.size() * 2 / 3);
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  EXPECT_EQ(ReadClusterGroups(path_).status().code(), StatusCode::kDataLoss);
}

TEST_F(ClusterIoTest, WrongMagicRejected) {
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out << "NOTACLUSTERFILE_____________";
  out.close();
  EXPECT_EQ(ReadClusterGroups(path_).status().code(), StatusCode::kDataLoss);
}

TEST_F(ClusterIoTest, MissingFileIsIoError) {
  EXPECT_EQ(ReadClusterGroups("/no/such/file").status().code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace storage
}  // namespace atypical
