#include "cps/region_grid.h"

#include <gtest/gtest.h>

namespace atypical {
namespace {

class RegionGridTest : public ::testing::Test {
 protected:
  RegionGridTest() {
    RoadNetworkConfig roads_config;
    roads_config.num_highways = 8;
    roads_config.area_width_miles = 20.0;
    roads_config.area_height_miles = 15.0;
    roads_config.seed = 9;
    roads_ = RoadNetwork::Generate(roads_config);
    SensorNetworkConfig sensors_config;
    sensors_config.target_num_sensors = 120;
    network_ = std::make_unique<SensorNetwork>(
        SensorNetwork::Place(roads_, sensors_config));
  }

  RoadNetwork roads_;
  std::unique_ptr<SensorNetwork> network_;
};

TEST_F(RegionGridTest, GridDimensionsCoverArea) {
  const RegionGrid grid(*network_, 5.0);
  EXPECT_EQ(grid.cols(), 4);  // ceil(20/5)
  EXPECT_EQ(grid.rows(), 3);  // ceil(15/5)
  EXPECT_EQ(grid.num_regions(), 12);
}

TEST_F(RegionGridTest, EverySensorAssignedToExactlyOneRegion) {
  const RegionGrid grid(*network_, 5.0);
  int total = 0;
  for (RegionId r = 0; r < static_cast<RegionId>(grid.num_regions()); ++r) {
    total += grid.SensorCount(r);
    for (SensorId s : grid.SensorsInRegion(r)) {
      EXPECT_EQ(grid.RegionOfSensor(s), r);
    }
  }
  EXPECT_EQ(total, network_->num_sensors());
}

TEST_F(RegionGridTest, SensorRegionMatchesItsLocation) {
  const RegionGrid grid(*network_, 5.0);
  for (const Sensor& s : network_->sensors()) {
    EXPECT_EQ(grid.RegionOfSensor(s.id), grid.RegionOfPoint(s.location));
  }
}

TEST_F(RegionGridTest, RegionRectContainsItsSensors) {
  const RegionGrid grid(*network_, 5.0);
  for (RegionId r = 0; r < static_cast<RegionId>(grid.num_regions()); ++r) {
    const GeoRect rect = grid.RegionRect(r);
    for (SensorId s : grid.SensorsInRegion(r)) {
      EXPECT_TRUE(rect.Contains(network_->location(s)))
          << "sensor " << s << " region " << r;
    }
  }
}

TEST_F(RegionGridTest, PointOnBoundaryMapsToExactlyOneRegion) {
  const RegionGrid grid(*network_, 5.0);
  // A point exactly on an interior cell boundary belongs to the next cell.
  EXPECT_EQ(grid.RegionOfPoint({5.0, 0.0}), grid.RegionOfPoint({5.1, 0.1}));
}

TEST_F(RegionGridTest, OutOfBoundsPointsClampToEdgeRegions) {
  const RegionGrid grid(*network_, 5.0);
  EXPECT_EQ(grid.RegionOfPoint({-10.0, -10.0}), grid.RegionOfPoint({0.0, 0.0}));
  EXPECT_EQ(grid.RegionOfPoint({100.0, 100.0}),
            grid.RegionOfPoint({19.9, 14.9}));
}

TEST_F(RegionGridTest, RegionsInRectSelectsOverlappingCells) {
  const RegionGrid grid(*network_, 5.0);
  // The whole area returns every region.
  EXPECT_EQ(grid.RegionsInRect(network_->bounds()).size(),
            static_cast<size_t>(grid.num_regions()));
  // A rect strictly inside one cell returns that cell.
  const std::vector<RegionId> one = grid.RegionsInRect({1.0, 1.0, 2.0, 2.0});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], grid.RegionOfPoint({1.5, 1.5}));
  // A rect spanning two adjacent cells returns both.
  const std::vector<RegionId> two = grid.RegionsInRect({4.0, 1.0, 6.0, 2.0});
  EXPECT_EQ(two.size(), 2u);
}

TEST_F(RegionGridTest, CoarseGridHasSingleRegion) {
  const RegionGrid grid(*network_, 100.0);
  EXPECT_EQ(grid.num_regions(), 1);
  EXPECT_EQ(grid.SensorCount(0), network_->num_sensors());
}

TEST_F(RegionGridTest, FineGridSpreadsSensors) {
  const RegionGrid grid(*network_, 2.0);
  int occupied = 0;
  for (RegionId r = 0; r < static_cast<RegionId>(grid.num_regions()); ++r) {
    if (grid.SensorCount(r) > 0) ++occupied;
  }
  EXPECT_GT(occupied, 10);
}

TEST_F(RegionGridTest, DeathOnBadCellSize) {
  EXPECT_DEATH(RegionGrid(*network_, 0.0), "Check failed");
}

}  // namespace
}  // namespace atypical
