// The grid index must return exactly the Def. 1 neighborhood — verified
// against a brute-force scan over random record sets and parameter sweeps.
#include "index/grid_index.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "gen/workload.h"
#include "util/random.h"

namespace atypical {
namespace index {
namespace {

struct IndexCase {
  double delta_d;
  int delta_t;
  int num_records;
  uint64_t seed;
};

class GridIndexPropertyTest : public ::testing::TestWithParam<IndexCase> {};

std::vector<AtypicalRecord> RandomRecords(const SensorNetwork& network,
                                          const TimeGrid& grid, int count,
                                          Rng& rng) {
  std::vector<AtypicalRecord> records;
  records.reserve(count);
  for (int i = 0; i < count; ++i) {
    AtypicalRecord r;
    r.sensor = static_cast<SensorId>(
        rng.UniformInt(static_cast<uint64_t>(network.num_sensors())));
    r.window = grid.MakeWindow(static_cast<int>(rng.UniformInt(uint64_t{3})),
                               static_cast<int>(rng.UniformInt(
                                   static_cast<uint64_t>(grid.WindowsPerDay()))));
    r.severity_minutes = 1.0f + static_cast<float>(rng.Uniform() * 10.0);
    records.push_back(r);
  }
  return records;
}

TEST_P(GridIndexPropertyTest, MatchesBruteForce) {
  const IndexCase c = GetParam();
  const auto workload = MakeWorkload(WorkloadScale::kTiny, 11);
  const SensorNetwork& network = *workload->sensors;
  const TimeGrid grid(15);
  Rng rng(c.seed);
  const std::vector<AtypicalRecord> records =
      RandomRecords(network, grid, c.num_records, rng);

  const GridIndex idx(records, network, grid, c.delta_d, c.delta_t);
  std::vector<size_t> from_index;
  for (size_t i = 0; i < records.size(); ++i) {
    from_index.clear();
    idx.DirectlyRelated(i, &from_index);
    std::sort(from_index.begin(), from_index.end());

    std::vector<size_t> brute;
    const GeoPoint& loc = network.location(records[i].sensor);
    for (size_t j = 0; j < records.size(); ++j) {
      if (j == i) continue;
      if (grid.IntervalMinutes(records[i].window, records[j].window) >=
          c.delta_t) {
        continue;
      }
      if (DistanceMiles(loc, network.location(records[j].sensor)) >=
          c.delta_d) {
        continue;
      }
      brute.push_back(j);
    }
    ASSERT_EQ(from_index, brute) << "record " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GridIndexPropertyTest,
    ::testing::Values(IndexCase{1.5, 15, 300, 1}, IndexCase{1.5, 15, 300, 2},
                      IndexCase{3.0, 30, 300, 3}, IndexCase{6.0, 80, 200, 4},
                      IndexCase{0.6, 15, 400, 5}, IndexCase{24.0, 45, 150, 6},
                      IndexCase{1.5, 120, 250, 7}));

TEST(GridIndexTest, EmptyRecordsWork) {
  const auto workload = MakeWorkload(WorkloadScale::kTiny, 11);
  const std::vector<AtypicalRecord> none;
  const GridIndex idx(none, *workload->sensors, TimeGrid(15), 1.5, 15);
  EXPECT_EQ(idx.num_records(), 0u);
  EXPECT_EQ(idx.num_buckets(), 0u);
}

TEST(GridIndexTest, SelfIsNeverRelated) {
  const auto workload = MakeWorkload(WorkloadScale::kTiny, 11);
  const TimeGrid grid(15);
  const std::vector<AtypicalRecord> records = {{0, 10, 5.0f, kNoEvent},
                                               {0, 10, 5.0f, kNoEvent}};
  const GridIndex idx(records, *workload->sensors, grid, 1.5, 15);
  std::vector<size_t> out;
  idx.DirectlyRelated(0, &out);
  // The duplicate record is related, the record itself is not.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 1u);
}

TEST(GridIndexTest, BucketCountBoundedByRecords) {
  const auto workload = MakeWorkload(WorkloadScale::kTiny, 11);
  const TimeGrid grid(15);
  Rng rng(9);
  const std::vector<AtypicalRecord> records =
      RandomRecords(*workload->sensors, grid, 500, rng);
  const GridIndex idx(records, *workload->sensors, grid, 1.5, 15);
  EXPECT_LE(idx.num_buckets(), records.size());
  EXPECT_GT(idx.num_buckets(), 0u);
}

TEST(GridIndexDeathTest, RejectsBadThresholds) {
  const auto workload = MakeWorkload(WorkloadScale::kTiny, 11);
  const std::vector<AtypicalRecord> none;
  EXPECT_DEATH(GridIndex(none, *workload->sensors, TimeGrid(15), 0.0, 15),
               "Check failed");
  EXPECT_DEATH(GridIndex(none, *workload->sensors, TimeGrid(15), 1.5, 0),
               "Check failed");
}

}  // namespace
}  // namespace index
}  // namespace atypical
