// Shuffle-the-bucket-count regression (DESIGN §13): the analyze pipeline —
// retrieval (Algorithm 1), serial and parallel integration (Algorithm 3),
// cube build — must produce bit-identical results while unordered-container
// hash layouts are perturbed underneath it via PerturbedReserve.  This is
// the runtime counterpart of the AL009/AL012 static checks: if an iteration
// order ever leaks into ids, output, or float accumulation again, the
// fingerprints below diverge.
#include <cstdint>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "core/event_retrieval.h"
#include "core/integration.h"
#include "core/parallel_integration.h"
#include "cube/cube.h"
#include "gen/workload.h"
#include "util/hash_perturb.h"

namespace atypical {
namespace {

// Doubles are fingerprinted by their exact bit pattern: a tolerance would
// hide exactly the order-dependent float accumulation this test exists for.
void AppendBits(double v, std::ostringstream* out) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  *out << bits << ',';
}

void AppendCluster(const AtypicalCluster& c, std::ostringstream* out) {
  *out << c.id << '|' << c.first_day << '|' << c.last_day << '|'
       << c.num_records << '|' << c.dominant_true_event << '|'
       << c.left_child << '|' << c.right_child << '|';
  for (const ClusterId id : c.micro_ids) *out << id << ',';
  *out << '|';
  for (const FeatureVector::Entry& e : c.spatial.entries()) {
    *out << e.key << ':';
    AppendBits(e.severity, out);
  }
  *out << '|';
  for (const FeatureVector::Entry& e : c.temporal.entries()) {
    *out << e.key << ':';
    AppendBits(e.severity, out);
  }
  *out << '\n';
}

struct PipelineFingerprint {
  std::string serial;
  std::string parallel;
  std::string cube;
};

PipelineFingerprint RunPipeline() {
  std::unique_ptr<Workload> workload = MakeWorkload(WorkloadScale::kTiny, 29);
  const TimeGrid grid = workload->gen_config.time_grid;
  const std::vector<AtypicalRecord> records =
      workload->generator->GenerateMonthAtypical(0);

  RetrievalParams retrieval_params;
  ClusterIdGenerator retrieval_ids(1);
  const std::vector<AtypicalCluster> micros = RetrieveMicroClusters(
      records, *workload->sensors, grid, retrieval_params, &retrieval_ids);

  IntegrationParams base;
  base.delta_sim = 0.4;
  ClusterIdGenerator serial_ids(100000);
  const std::vector<AtypicalCluster> serial =
      IntegrateClusters(micros, base, &serial_ids);

  ParallelIntegrationParams parallel_params;
  parallel_params.base = base;
  parallel_params.num_threads = 4;
  parallel_params.min_shard_candidates = 4;  // force the pool path
  ClusterIdGenerator parallel_ids(100000);
  const std::vector<AtypicalCluster> parallel =
      ParallelIntegrateClusters(micros, parallel_params, &parallel_ids);

  const cube::BottomUpCube cube =
      cube::BottomUpCube::FromAtypical(records, *workload->regions, grid);

  PipelineFingerprint fp;
  std::ostringstream s;
  for (const AtypicalCluster& c : serial) AppendCluster(c, &s);
  fp.serial = s.str();
  std::ostringstream p;
  for (const AtypicalCluster& c : parallel) AppendCluster(c, &p);
  fp.parallel = p.str();
  std::ostringstream q;
  q << cube.num_cells() << '|' << cube.ByteSize() << '|';
  const auto num_regions =
      static_cast<RegionId>(workload->regions->num_regions());
  for (RegionId region = 0; region < num_regions; ++region) {
    for (int day = 0; day < 31; ++day) {
      AppendBits(cube.RegionDaySeverity(region, day), &q);
    }
  }
  fp.cube = q.str();
  return fp;
}

class DeterminismRegressionTest : public ::testing::Test {
 protected:
  void TearDown() override { SetHashLayoutPerturbation(0); }
};

// Guard against the hook silently becoming a no-op: a perturbed reserve must
// actually move libstdc++ to a different bucket-count prime.
TEST_F(DeterminismRegressionTest, PerturbationChangesBucketLayout) {
  SetHashLayoutPerturbation(0);
  std::unordered_map<int, int> plain;
  PerturbedReserve(plain, 16);
  SetHashLayoutPerturbation(7919);
  std::unordered_map<int, int> perturbed;
  PerturbedReserve(perturbed, 16);
  EXPECT_NE(plain.bucket_count(), perturbed.bucket_count());
}

TEST_F(DeterminismRegressionTest, AnalyzeBitIdenticalAcrossHashLayouts) {
  SetHashLayoutPerturbation(0);
  const PipelineFingerprint baseline = RunPipeline();
  ASSERT_FALSE(baseline.serial.empty());
  ASSERT_FALSE(baseline.cube.empty());

  for (const size_t perturbation : {size_t{257}, size_t{1031}, size_t{7919}}) {
    SetHashLayoutPerturbation(perturbation);
    const PipelineFingerprint run = RunPipeline();
    EXPECT_EQ(baseline.serial, run.serial)
        << "serial integration output depends on hash layout (perturbation "
        << perturbation << ")";
    EXPECT_EQ(baseline.parallel, run.parallel)
        << "parallel integration output depends on hash layout (perturbation "
        << perturbation << ")";
    EXPECT_EQ(baseline.cube, run.cube)
        << "cube severities depend on hash layout (perturbation "
        << perturbation << ")";
  }
}

}  // namespace
}  // namespace atypical
