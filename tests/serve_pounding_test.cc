// Many-readers / one-writer pounding: reader threads serve a repeating query
// mix (cache hits and misses, explicit and kAuto strategies) while the
// writer keeps staging new days, re-materializing levels and publishing
// epochs.  Every reply must be bit-identical to an uncached single-threaded
// engine run on the reply's own snapshot.  Run under ThreadSanitizer (the
// tsan CI job runs the whole ctest suite) this is the data-race proof for
// the serving layer; in a plain build it still verifies the
// cached-equals-uncached contract under real concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <iterator>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "analytics/report.h"
#include "serve/query_service.h"
#include "serve_test_util.h"

namespace atypical {
namespace serve {
namespace {

TEST(ServePoundingTest, ReadersStayConsistentWhileWriterPublishes) {
  const std::unique_ptr<analytics::ExperimentContext> ctx =
      analytics::BuildContext(WorkloadScale::kTiny, 2,
                              analytics::DefaultForestParams(), 37);
  // Materialized planning on: planned All queries race level rebuilds too,
  // and stay deterministic because each snapshot freezes the levels.
  QueryEngineOptions engine_options = analytics::DefaultEngineOptions();
  engine_options.use_materialized_levels = true;
  auto serving = MakeServing(*ctx, engine_options);

  // Split the generated records by day so the writer can drip them in.
  std::map<int, std::vector<AtypicalRecord>> by_day;
  const TimeGrid& grid = ctx->time_grid();
  for (const std::vector<AtypicalRecord>& month : ctx->monthly_atypical) {
    for (const AtypicalRecord& r : month) {
      by_day[grid.DayOfWindow(r.window)].push_back(r);
    }
  }

  // Seed the first day so readers have data from the start.
  auto day_it = by_day.begin();
  ASSERT_NE(day_it, by_day.end());
  serving->staging_forest()->AddDay(day_it->first, day_it->second);
  ++day_it;
  serving->PublishSnapshot();

  ServeOptions options;
  options.cache_entries = 64;
  QueryService service(serving.get(), options);

  constexpr int kReaders = 4;
  constexpr int kQueriesPerReader = 150;
  std::atomic<int> mismatches{0};
  std::atomic<bool> writer_done{false};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int reader = 0; reader < kReaders; ++reader) {
    readers.emplace_back([&, reader] {
      QueryScratch scratch;  // warm per-thread scratch, the serving idiom
      const ServeStrategy strategies[] = {
          ServeStrategy::kAll, ServeStrategy::kPrune, ServeStrategy::kGuided,
          ServeStrategy::kAuto};
      for (int i = 0; i < kQueriesPerReader; ++i) {
        // A small repeating pool of queries: repeats hit the cache, the
        // day-offset ones miss, and epoch publishes reshuffle both.
        AnalyticalQuery query = ctx->WholeAreaQuery(14);
        query.days = DayRange{(i % 3) * 2, (i % 3) * 2 + 6};
        const ServeStrategy strategy =
            strategies[(reader + i) % std::size(strategies)];

        const ServeReply reply = service.ServeQuery(query, strategy, &scratch);
        ASSERT_NE(reply.result, nullptr);
        ASSERT_NE(reply.snapshot, nullptr);

        // The contract, checked against the exact snapshot served: an
        // uncached, single-threaded run must agree bit for bit.
        const QueryResult direct =
            reply.snapshot->engine.Run(query, reply.strategy, &scratch);
        if (!BitIdentical(*reply.result, direct)) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::thread writer([&] {
    // Drip the remaining days in, re-materializing every few publishes so
    // readers race against level rebuilds too.
    int publishes = 0;
    for (; day_it != by_day.end(); ++day_it) {
      serving->staging_forest()->AddDay(day_it->first, day_it->second);
      if (++publishes % 3 == 0) {
        serving->staging_forest()->MaterializeWeeks();
      }
      serving->PublishSnapshot();
    }
    writer_done.store(true, std::memory_order_relaxed);
  });

  for (std::thread& t : readers) t.join();
  writer.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_TRUE(writer_done.load());
  EXPECT_GT(serving->current_epoch(), 1u);

  // The repeating pool must have produced real cache traffic.
  const QueryResultCache::CacheTotals totals = service.cache_totals();
  EXPECT_GT(totals.hits, 0u);
  EXPECT_GT(totals.misses, 0u);
}

}  // namespace
}  // namespace serve
}  // namespace atypical
