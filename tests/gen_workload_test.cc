#include "gen/workload.h"

#include <gtest/gtest.h>

namespace atypical {
namespace {

TEST(WorkloadTest, TinyScaleBuilds) {
  const auto w = MakeWorkload(WorkloadScale::kTiny, 1);
  EXPECT_EQ(w->roads.highways().size(), 6u);
  EXPECT_GT(w->sensors->num_sensors(), 30);
  EXPECT_LT(w->sensors->num_sensors(), 120);
  EXPECT_GT(w->regions->num_regions(), 1);
  EXPECT_EQ(w->num_months, 3);
}

TEST(WorkloadTest, SensorSpacingBelowDefaultDeltaD) {
  // δd defaults to 1.5 miles; adjacent sensors must be closer than that or
  // events could never span more than one sensor.
  for (const WorkloadScale scale :
       {WorkloadScale::kTiny, WorkloadScale::kSmall}) {
    const auto w = MakeWorkload(scale, 1);
    EXPECT_LT(w->sensors->spacing_miles(), 1.3)
        << WorkloadScaleName(scale);
  }
}

TEST(WorkloadTest, SmallScaleMatchesDesignTargets) {
  const auto w = MakeWorkload(WorkloadScale::kSmall, 1);
  EXPECT_EQ(w->roads.highways().size(), 14u);
  EXPECT_GT(w->sensors->num_sensors(), 350);
  EXPECT_LT(w->sensors->num_sensors(), 560);
  EXPECT_EQ(w->gen_config.days_per_month, 28);
  EXPECT_EQ(w->gen_config.time_grid.window_minutes(), 15);
  EXPECT_EQ(w->num_months, 12);
}

TEST(WorkloadTest, ScaleNames) {
  EXPECT_STREQ(WorkloadScaleName(WorkloadScale::kTiny), "tiny");
  EXPECT_STREQ(WorkloadScaleName(WorkloadScale::kSmall), "small");
  EXPECT_STREQ(WorkloadScaleName(WorkloadScale::kPaperLike), "paper-like");
}

TEST(WorkloadTest, SeedChangesGeneratedData) {
  const auto a = MakeWorkload(WorkloadScale::kTiny, 1);
  const auto b = MakeWorkload(WorkloadScale::kTiny, 2);
  const auto ra = a->generator->GenerateMonthAtypical(0);
  const auto rb = b->generator->GenerateMonthAtypical(0);
  EXPECT_TRUE(ra.size() != rb.size() ||
              !std::equal(ra.begin(), ra.end(), rb.begin()));
}

TEST(WorkloadTest, SameSeedReproduces) {
  const auto a = MakeWorkload(WorkloadScale::kTiny, 7);
  const auto b = MakeWorkload(WorkloadScale::kTiny, 7);
  const auto ra = a->generator->GenerateMonthAtypical(1);
  const auto rb = b->generator->GenerateMonthAtypical(1);
  ASSERT_EQ(ra.size(), rb.size());
  EXPECT_TRUE(std::equal(ra.begin(), ra.end(), rb.begin()));
}

TEST(WorkloadTest, RegionCellMilesPositive) {
  EXPECT_GT(DefaultRegionCellMiles(WorkloadScale::kTiny), 0.0);
  EXPECT_GT(DefaultRegionCellMiles(WorkloadScale::kSmall), 0.0);
  EXPECT_GT(DefaultRegionCellMiles(WorkloadScale::kPaperLike), 0.0);
}

}  // namespace
}  // namespace atypical
