#include "cube/cube.h"

#include <gtest/gtest.h>

#include "gen/workload.h"
#include "util/random.h"

namespace atypical {
namespace cube {
namespace {

class CubeTest : public ::testing::Test {
 protected:
  CubeTest() : workload_(MakeWorkload(WorkloadScale::kTiny, 19)) {
    records_ = workload_->generator->GenerateMonthAtypical(0);
    grid_ = workload_->gen_config.time_grid;
  }

  const RegionGrid& regions() { return *workload_->regions; }

  std::unique_ptr<Workload> workload_;
  std::vector<AtypicalRecord> records_;
  TimeGrid grid_;
};

TEST_F(CubeTest, TotalSeverityConserved) {
  const BottomUpCube cube = BottomUpCube::FromAtypical(records_, regions(),
                                                       grid_);
  double record_total = 0.0;
  for (const AtypicalRecord& r : records_)
    record_total += static_cast<double>(r.severity_minutes);
  std::vector<RegionId> all_regions;
  for (RegionId r = 0; r < static_cast<RegionId>(regions().num_regions());
       ++r) {
    all_regions.push_back(r);
  }
  EXPECT_NEAR(cube.F(all_regions, DayRange{0, 6}), record_total, 1e-3);
}

TEST_F(CubeTest, FIsDistributiveOverDayPartitions) {
  // Property 4: F over (W, T) equals the sum of F over any partition of T.
  const BottomUpCube cube =
      BottomUpCube::FromAtypical(records_, regions(), grid_);
  std::vector<RegionId> all_regions;
  for (RegionId r = 0; r < static_cast<RegionId>(regions().num_regions());
       ++r) {
    all_regions.push_back(r);
  }
  const double whole = cube.F(all_regions, DayRange{0, 6});
  for (int split = 0; split < 6; ++split) {
    const double left = cube.F(all_regions, DayRange{0, split});
    const double right = cube.F(all_regions, DayRange{split + 1, 6});
    EXPECT_NEAR(left + right, whole, 1e-6) << "split " << split;
  }
}

TEST_F(CubeTest, FIsDistributiveOverRegionPartitions) {
  const BottomUpCube cube =
      BottomUpCube::FromAtypical(records_, regions(), grid_);
  const DayRange days{0, 6};
  std::vector<RegionId> all_regions;
  for (RegionId r = 0; r < static_cast<RegionId>(regions().num_regions());
       ++r) {
    all_regions.push_back(r);
  }
  const double whole = cube.F(all_regions, days);
  // Random bipartition of regions.
  Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<RegionId> left;
    std::vector<RegionId> right;
    for (RegionId r : all_regions) {
      (rng.Bernoulli(0.5) ? left : right).push_back(r);
    }
    EXPECT_NEAR(cube.F(left, days) + cube.F(right, days), whole, 1e-6);
  }
}

TEST_F(CubeTest, MergeFromEqualsConcatenatedBuild) {
  const std::vector<AtypicalRecord> month1 =
      workload_->generator->GenerateMonthAtypical(1);
  BottomUpCube merged =
      BottomUpCube::FromAtypical(records_, regions(), grid_);
  merged.MergeFrom(BottomUpCube::FromAtypical(month1, regions(), grid_));

  std::vector<AtypicalRecord> both = records_;
  both.insert(both.end(), month1.begin(), month1.end());
  const BottomUpCube direct =
      BottomUpCube::FromAtypical(both, regions(), grid_);

  EXPECT_EQ(merged.num_cells(), direct.num_cells());
  for (RegionId r = 0; r < static_cast<RegionId>(regions().num_regions());
       ++r) {
    for (int day = 0; day < 14; ++day) {
      EXPECT_NEAR(merged.RegionDaySeverity(r, day),
                  direct.RegionDaySeverity(r, day), 1e-6)
          << "region " << r << " day " << day;
    }
  }
}

TEST_F(CubeTest, RegionDayMatchesBruteForce) {
  const BottomUpCube cube =
      BottomUpCube::FromAtypical(records_, regions(), grid_);
  // Pick the busiest region and compare against a direct scan.
  std::map<RegionId, double> per_region;
  for (const AtypicalRecord& r : records_) {
    if (grid_.DayOfWindow(r.window) == 2) {
      per_region[regions().RegionOfSensor(r.sensor)] +=
          static_cast<double>(r.severity_minutes);
    }
  }
  for (const auto& [region, severity] : per_region) {
    EXPECT_NEAR(cube.RegionDaySeverity(region, 2), severity, 1e-6);
  }
}

TEST_F(CubeTest, EmptyCellsReadZero) {
  const BottomUpCube cube =
      BottomUpCube::FromAtypical(records_, regions(), grid_);
  EXPECT_DOUBLE_EQ(cube.RegionDaySeverity(0, 1000), 0.0);
  EXPECT_EQ(cube.Lookup(CubeLevel::kSensorDay, 9999, 0), nullptr);
}

TEST_F(CubeTest, OcCubeAggregatesAllReadings) {
  const Dataset month = workload_->generator->GenerateMonth(0);
  const BottomUpCube oc = BottomUpCube::FromReadings(month, regions());
  EXPECT_EQ(oc.build_stats().records, month.num_readings());
  // Region-day count cells must cover every reading.
  int64_t count = 0;
  for (RegionId r = 0; r < static_cast<RegionId>(regions().num_regions());
       ++r) {
    for (int day = 0; day < 7; ++day) {
      const CubeCell* cell = oc.Lookup(CubeLevel::kRegionDay, r, day);
      if (cell != nullptr) count += cell->count;
    }
  }
  EXPECT_EQ(count, month.num_readings());
}

TEST_F(CubeTest, McCubeIsSmallerThanOc) {
  const Dataset month = workload_->generator->GenerateMonth(0);
  const BottomUpCube oc = BottomUpCube::FromReadings(month, regions());
  const BottomUpCube mc =
      BottomUpCube::FromAtypical(records_, regions(), grid_);
  EXPECT_LT(mc.num_cells(), oc.num_cells());
  EXPECT_LT(mc.ByteSize(), oc.ByteSize());
}

TEST_F(CubeTest, BuildStatsPopulated) {
  const BottomUpCube cube =
      BottomUpCube::FromAtypical(records_, regions(), grid_);
  EXPECT_EQ(cube.build_stats().records,
            static_cast<int64_t>(records_.size()));
  EXPECT_EQ(cube.build_stats().num_cells, cube.num_cells());
  EXPECT_EQ(cube.build_stats().byte_size, cube.ByteSize());
  EXPECT_GE(cube.build_stats().seconds, 0.0);
  EXPECT_GT(cube.num_cells(), 0u);
}

TEST(CubeHierarchyTest, LevelIndices) {
  const TimeGrid grid(15);
  EXPECT_EQ(HourOfWindow(grid.MakeWindow(0, 4), grid), 1);
  EXPECT_EQ(HourOfWindow(grid.MakeWindow(1, 0), grid), 24);
  EXPECT_EQ(DayOfWindow(grid.MakeWindow(3, 10), grid), 3);
  EXPECT_EQ(WeekOfDay(0), 0);
  EXPECT_EQ(WeekOfDay(6), 0);
  EXPECT_EQ(WeekOfDay(7), 1);
  EXPECT_EQ(MonthOfDay(27, 28), 0);
  EXPECT_EQ(MonthOfDay(28, 28), 1);
}

TEST(CubeHierarchyTest, LevelNames) {
  EXPECT_STREQ(CubeLevelName(CubeLevel::kRegionHour), "region_hour");
  EXPECT_STREQ(CubeLevelName(CubeLevel::kRegionWeek), "region_week");
}

}  // namespace
}  // namespace cube
}  // namespace atypical
