// The graceful-degradation contract, end to end (DESIGN §12): a FaultPlan-
// damaged dataset, pushed through salvage → ingest → forest → query, must
// yield (a) exactly the clusters a clean run restricted to the surviving
// records yields — same ids, same event labels — and (b) a completeness
// annotation that localizes the loss per day, distinguishing a blind day
// (records lost) from a quiet one (nothing happened).
#include <algorithm>
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "analytics/report.h"
#include "core/ingest.h"
#include "cube/cube.h"
#include "gen/workload.h"
#include "storage/reader.h"
#include "storage/writer.h"
#include "util/fault.h"
#include "util/logging.h"

namespace atypical {
namespace {

using storage::SalvageReport;
using storage::WriterOptions;
using storage::WriteDataset;

// Blocks sized to exactly one day of readings, so each skipped block maps to
// one blind day.
class DegradationEndToEndTest : public ::testing::Test {
 protected:
  DegradationEndToEndTest() {
    workload_ = MakeWorkload(WorkloadScale::kTiny, 17);
    grid_ = workload_->gen_config.time_grid;
    pristine_ = workload_->generator->GenerateMonth(0);
    records_per_day_ = static_cast<uint32_t>(
        grid_.WindowsPerDay() * pristine_.meta().num_sensors);
    path_ = ::testing::TempDir() + "/degradation_e2e.atyp";
    WriterOptions options;
    options.block_records = records_per_day_;
    CHECK_OK(WriteDataset(pristine_, path_, options).status());
  }
  ~DegradationEndToEndTest() override { std::remove(path_.c_str()); }

  // Flips one payload bit in each of `blocks`, failing those blocks' CRCs.
  void DamageBlocks(const std::vector<uint64_t>& blocks) {
    std::ifstream in(path_, std::ios::binary);
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
    in.close();
    const size_t data_start = sizeof(storage::kMagic) + storage::kFileHeaderBytes;
    const size_t block_bytes = storage::kBlockHeaderBytes +
                               records_per_day_ * storage::kWireRecordBytes;
    FaultPlan plan(404);
    for (const uint64_t b : blocks) {
      const size_t off = data_start + static_cast<size_t>(b) * block_bytes;
      plan.FlipBit(&bytes, off + storage::kBlockHeaderBytes, off + block_bytes);
    }
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),  // NOLINT: byte I/O
              static_cast<std::streamsize>(bytes.size()));
  }

  // The pristine readings minus the damaged blocks' day slices.
  Dataset Restricted(const std::vector<uint64_t>& damaged_blocks) const {
    std::vector<Reading> survivors;
    const std::vector<Reading>& all = pristine_.readings();
    for (size_t i = 0; i < all.size(); ++i) {
      const uint64_t block = i / records_per_day_;
      if (std::find(damaged_blocks.begin(), damaged_blocks.end(), block) ==
          damaged_blocks.end()) {
        survivors.push_back(all[i]);
      }
    }
    return Dataset(pristine_.meta(), std::move(survivors));
  }

  // Ingest → forest → provenance for one source dataset.  Every record goes
  // through the robust guard (kBuffer), mirroring the production path.
  struct Built {
    std::unique_ptr<AtypicalForest> forest;
    std::unique_ptr<cube::BottomUpCube> cube;
    IngestStats ingest;
  };
  Built Build(const Dataset& source, const SalvageReport* report) {
    Built built;
    built.forest = std::make_unique<AtypicalForest>(
        workload_->sensors.get(), grid_, analytics::DefaultForestParams());
    std::vector<AtypicalRecord> accepted;
    {
      RobustStreamingEventBuilder guard(
          workload_->sensors.get(), grid_,
          analytics::DefaultForestParams().retrieval, built.forest->ids(),
          [](AtypicalCluster) {});
      guard.set_accept_tap(
          [&](const AtypicalRecord& r) { accepted.push_back(r); });
      for (const AtypicalRecord& r : source.ExtractAtypicalRecords()) {
        (void)guard.Add(r);  // quarantine verdicts land in stats()
      }
      guard.Flush();
      built.ingest = guard.stats();
    }
    built.forest->AddRecords(accepted);
    built.cube = std::make_unique<cube::BottomUpCube>(
        cube::BottomUpCube::FromAtypical(accepted, *workload_->regions, grid_));

    if (report != nullptr) {
      // Storage loss attributed per day, quarantine charged to the range's
      // first day (the guard does not track per-record days).
      for (const auto& [day, lost] : analytics::LostRecordsByDay(
               *report, source.meta(), records_per_day_)) {
        DayProvenance p;
        p.records_lost = lost;
        p.blocks_skipped = lost / records_per_day_;
        built.forest->RecordDayProvenance(day, p);
      }
      if (built.ingest.quarantined() > 0) {
        DayProvenance p;
        p.records_quarantined = built.ingest.quarantined();
        built.forest->RecordDayProvenance(source.meta().first_day, p);
      }
    }
    return built;
  }

  QueryResult RunAll(Built* built, const DayRange& days) {
    AnalyticalQuery query;
    query.area = workload_->sensors->bounds();
    query.days = days;
    QueryEngine engine(workload_->sensors.get(), workload_->regions.get(),
                       built->forest.get(), built->cube.get(),
                       analytics::DefaultEngineOptions());
    return engine.Run(query, QueryStrategy::kAll);
  }

  std::unique_ptr<Workload> workload_;
  TimeGrid grid_;
  Dataset pristine_;
  uint32_t records_per_day_ = 0;
  std::string path_;
};

// The acceptance property: damaged query == clean-restricted query, plus an
// honest completeness annotation on the damaged side only.
TEST_F(DegradationEndToEndTest, DamagedRunMatchesCleanRunOnSurvivors) {
  const std::vector<uint64_t> damaged_blocks = {2, 5};
  DamageBlocks(damaged_blocks);

  SalvageReport report;
  storage::ReaderOptions options;
  options.salvage = true;
  const Result<Dataset> salvaged =
      storage::ReadDataset(path_, options, &report);
  ASSERT_TRUE(salvaged.ok()) << salvaged.status().ToString();
  ASSERT_EQ(report.blocks_skipped, damaged_blocks.size());
  ASSERT_EQ(report.skipped_blocks, damaged_blocks);

  Built damaged = Build(*salvaged, &report);
  Built clean = Build(Restricted(damaged_blocks), nullptr);

  const DayRange whole = pristine_.meta().Days();
  const QueryResult from_damaged = RunAll(&damaged, whole);
  const QueryResult from_clean = RunAll(&clean, whole);

  // Identical clusters: same ids, same severities, same event labels.  Both
  // pipelines saw the same record sequence, so their id generators agree.
  ASSERT_EQ(from_damaged.clusters.size(), from_clean.clusters.size());
  auto by_id = [](const AtypicalCluster& a, const AtypicalCluster& b) {
    return a.id < b.id;
  };
  std::vector<AtypicalCluster> lhs = from_damaged.clusters;
  std::vector<AtypicalCluster> rhs = from_clean.clusters;
  std::sort(lhs.begin(), lhs.end(), by_id);
  std::sort(rhs.begin(), rhs.end(), by_id);
  for (size_t i = 0; i < lhs.size(); ++i) {
    EXPECT_EQ(lhs[i].id, rhs[i].id);
    EXPECT_EQ(lhs[i].dominant_true_event, rhs[i].dominant_true_event);
    EXPECT_DOUBLE_EQ(lhs[i].severity(), rhs[i].severity());
  }

  // The damaged answer declares its blindness; the clean one is complete.
  const DataCompleteness& dc = from_damaged.completeness;
  EXPECT_FALSE(dc.complete());
  EXPECT_EQ(dc.days_in_range, pristine_.meta().num_days);
  EXPECT_EQ(dc.days_degraded, static_cast<int>(damaged_blocks.size()));
  EXPECT_EQ(dc.records_lost,
            static_cast<uint64_t>(damaged_blocks.size()) * records_per_day_);
  EXPECT_TRUE(dc.integration_converged);
  EXPECT_TRUE(from_clean.completeness.complete());
  EXPECT_EQ(from_clean.completeness.days_in_range,
            pristine_.meta().num_days);
}

// Per-day annotation distinguishes a blind day from a quiet one.
TEST_F(DegradationEndToEndTest, BlindDayVsQuietDay) {
  const std::vector<uint64_t> damaged_blocks = {3};
  DamageBlocks(damaged_blocks);

  SalvageReport report;
  storage::ReaderOptions options;
  options.salvage = true;
  const Result<Dataset> salvaged =
      storage::ReadDataset(path_, options, &report);
  ASSERT_TRUE(salvaged.ok());
  Built built = Build(*salvaged, &report);

  const int first = pristine_.meta().first_day;
  // Blind day: its whole block was lost; the empty answer says so.
  const QueryResult blind =
      RunAll(&built, DayRange{first + 3, first + 3});
  EXPECT_TRUE(blind.clusters.empty());
  EXPECT_EQ(blind.completeness.days_in_range, 1);
  EXPECT_EQ(blind.completeness.days_with_data, 0);
  EXPECT_EQ(blind.completeness.days_degraded, 1);
  EXPECT_EQ(blind.completeness.records_lost,
            static_cast<uint64_t>(records_per_day_));
  EXPECT_FALSE(blind.completeness.complete());

  // Quiet day: past the stored month, no data AND no damage — empty result,
  // clean conscience.
  const int past = first + pristine_.meta().num_days;
  const QueryResult quiet = RunAll(&built, DayRange{past, past});
  EXPECT_TRUE(quiet.clusters.empty());
  EXPECT_EQ(quiet.completeness.days_in_range, 1);
  EXPECT_EQ(quiet.completeness.days_with_data, 0);
  EXPECT_EQ(quiet.completeness.days_degraded, 0);
  EXPECT_TRUE(quiet.completeness.complete());

  // An undamaged stored day is complete and has data.
  const QueryResult good = RunAll(&built, DayRange{first, first});
  EXPECT_EQ(good.completeness.days_with_data, 1);
  EXPECT_TRUE(good.completeness.complete());

  // CompletenessLine renders both states.
  EXPECT_EQ(analytics::CompletenessLine(quiet.completeness),
            "completeness: full");
  EXPECT_NE(analytics::CompletenessLine(blind.completeness).find("degraded"),
            std::string::npos);
}

// Ingest quarantine propagates into the annotation alongside storage loss.
TEST_F(DegradationEndToEndTest, QuarantineShowsUpInCompleteness) {
  // Corrupt a slice of the atypical stream; the guard quarantines them.
  FaultPlan plan(99);
  const std::vector<AtypicalRecord> records =
      plan.CorruptRecords(pristine_.ExtractAtypicalRecords(), 0.2, grid_);

  Built built;
  built.forest = std::make_unique<AtypicalForest>(
      workload_->sensors.get(), grid_, analytics::DefaultForestParams());
  std::vector<AtypicalRecord> accepted;
  {
    RobustStreamingEventBuilder guard(
        workload_->sensors.get(), grid_,
        analytics::DefaultForestParams().retrieval, built.forest->ids(),
        [](AtypicalCluster) {});
    guard.set_accept_tap(
        [&](const AtypicalRecord& r) { accepted.push_back(r); });
    for (const AtypicalRecord& r : records) {
      (void)guard.Add(r);  // corrupt ones are the point
    }
    guard.Flush();
    built.ingest = guard.stats();
  }
  ASSERT_GT(built.ingest.quarantined(), 0u);
  built.forest->AddRecords(accepted);
  built.cube = std::make_unique<cube::BottomUpCube>(
      cube::BottomUpCube::FromAtypical(accepted, *workload_->regions, grid_));
  DayProvenance p;
  p.records_quarantined = built.ingest.quarantined();
  built.forest->RecordDayProvenance(pristine_.meta().first_day, p);

  const QueryResult result = RunAll(&built, pristine_.meta().Days());
  EXPECT_EQ(result.completeness.records_quarantined,
            built.ingest.quarantined());
  EXPECT_EQ(result.completeness.days_degraded, 1);
  EXPECT_FALSE(result.completeness.complete());
}

// The integration budget guard surfaces through the annotation: a partial
// fixpoint is a degradation, not a silent wrong answer.
TEST_F(DegradationEndToEndTest, IntegrationBudgetBreaksCompleteness) {
  Built built = Build(pristine_, nullptr);

  AnalyticalQuery query;
  query.area = workload_->sensors->bounds();
  query.days = pristine_.meta().Days();

  QueryEngineOptions options = analytics::DefaultEngineOptions();
  options.integration.max_fixpoint_rounds = 1;
  QueryEngine budgeted(workload_->sensors.get(), workload_->regions.get(),
                       built.forest.get(), built.cube.get(), options);
  const QueryResult partial = budgeted.Run(query, QueryStrategy::kAll);
  EXPECT_FALSE(partial.completeness.integration_converged);
  EXPECT_FALSE(partial.completeness.complete());
  EXPECT_FALSE(partial.cost.integration.converged);

  QueryEngine unbudgeted(workload_->sensors.get(), workload_->regions.get(),
                         built.forest.get(), built.cube.get(),
                         analytics::DefaultEngineOptions());
  const QueryResult full = unbudgeted.Run(query, QueryStrategy::kAll);
  EXPECT_TRUE(full.completeness.integration_converged);
  EXPECT_TRUE(full.completeness.complete());
  // The partial answer under-merges: at least as many clusters as the
  // converged one, covering the same severity mass.
  EXPECT_GE(partial.clusters.size(), full.clusters.size());
  double partial_mass = 0.0;
  double full_mass = 0.0;
  for (const AtypicalCluster& c : partial.clusters) partial_mass += c.severity();
  for (const AtypicalCluster& c : full.clusters) full_mass += c.severity();
  EXPECT_NEAR(partial_mass, full_mass, 1e-6);
}

}  // namespace
}  // namespace atypical
