// util/alloc_probe counts this thread's heap allocations.  The first half
// proves the counter's mechanics (single counts, nesting, zero-alloc scopes,
// thread isolation); the second half is the runtime side of the serving-
// readiness contract (DESIGN §15): the allocation budgets that
// scripts/check_effects.py grandfathers in effects_ratchet.json are pinned
// here — QueryEngine::Run stays under a named steady-state budget with a
// warm QueryScratch, and the similarity verdict on similarity-ready
// clusters allocates nothing at all.
#include "util/alloc_probe.h"

#include <iostream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "analytics/report.h"
#include "core/query.h"
#include "core/similarity.h"

namespace atypical {
namespace {

// One observable heap allocation.  The volatile pointer defeats heap
// elision: the compiler may otherwise remove a new/delete pair whose
// pointer never escapes, and the probe would count nothing.
void HeapAlloc(int value) {
  int* volatile p = new int(value);
  delete p;
}

TEST(AllocProbeTest, CountsASingleAllocation) {
  util::AllocProbe probe;
  int* volatile p = new int(7);
  const uint64_t after_new = probe.Count();
  delete p;
  const uint64_t after_delete = probe.Count();
  EXPECT_EQ(after_new, 1u);
  EXPECT_EQ(after_delete, 1u);  // frees are not allocations
}

TEST(AllocProbeTest, ProbesNest) {
  util::AllocProbe outer;
  HeapAlloc(1);
  util::AllocProbe inner;
  HeapAlloc(2);
  const uint64_t inner_count = inner.Count();
  const uint64_t outer_count = outer.Count();
  EXPECT_EQ(inner_count, 1u);
  EXPECT_EQ(outer_count, 2u);  // the inner probe's window is included
}

TEST(AllocProbeTest, HeapFreeScopeCountsZero) {
  volatile int x = 3;
  util::AllocProbe probe;
  int acc = 0;
  for (int i = 0; i < 100; ++i) acc += x * i;
  const uint64_t count = probe.Count();
  EXPECT_EQ(count, 0u);
  EXPECT_GT(acc, 0);
}

TEST(AllocProbeTest, ReservedCapacityIsFree) {
  std::vector<int> v;
  v.reserve(8);
  util::AllocProbe probe;
  for (int i = 0; i < 8; ++i) v.push_back(i);
  const uint64_t within_capacity = probe.Count();
  v.push_back(8);  // forces regrowth
  const uint64_t after_growth = probe.Count();
  EXPECT_EQ(within_capacity, 0u);
  EXPECT_GE(after_growth, 1u);
}

TEST(AllocProbeTest, OtherThreadsAllocationsAreInvisible) {
  // Two identical launches differing only in how much the worker thread
  // allocates; the launching thread's own delta (thread bookkeeping) must
  // not scale with the worker's allocation count.
  auto launch = [](int allocs) {
    util::AllocProbe probe;
    std::thread worker([allocs] {
      for (int i = 0; i < allocs; ++i) HeapAlloc(i);
    });
    worker.join();
    return probe.Count();
  };
  const uint64_t small = launch(1);
  const uint64_t large = launch(4096);
  EXPECT_LT(large, small + 64);
}

// ---- serving-readiness budgets (DESIGN §15) --------------------------------

// The named budget behind the ratchet's (QueryEngine::Run, allocates)
// entry: heap allocations of one Run() on the kTiny 3-day workload at
// steady state (warm QueryScratch, lazily-built sketches already paid,
// obs counters registered).  Everything left is O(result) answer assembly;
// the ~2x headroom over the measured count absorbs library variation
// without letting a per-input-cluster regression slip through.
constexpr uint64_t kQueryRunSteadyStateAllocBudget = 1024;

class ServingBudgetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ctx_ = analytics::BuildContext(WorkloadScale::kTiny, 3,
                                   analytics::DefaultForestParams(), 29)
               .release();
  }
  static void TearDownTestSuite() {
    delete ctx_;
    ctx_ = nullptr;
  }

  QueryEngine Engine(QueryEngineOptions options = {}) {
    options.integration = ctx_->forest_params.integration;
    return ctx_->MakeEngine(options);
  }

  static analytics::ExperimentContext* ctx_;
};

analytics::ExperimentContext* ServingBudgetTest::ctx_ = nullptr;

TEST_F(ServingBudgetTest, QueryRunSteadyStateStaysWithinBudget) {
  const AnalyticalQuery query = ctx_->WholeAreaQuery(3);
  const QueryEngine engine = Engine();
  for (const QueryStrategy strategy :
       {QueryStrategy::kAll, QueryStrategy::kPrune, QueryStrategy::kGuided}) {
    QueryScratch scratch;
    // Cold call: fresh scratch, first-touch lazy work.
    util::AllocProbe cold_probe;
    const QueryResult cold = engine.Run(query, strategy, &scratch);
    const uint64_t cold_count = cold_probe.Count();
    // Warm-up a second time so every reusable buffer has reached steady
    // state, then measure.
    const QueryResult warm = engine.Run(query, strategy, &scratch);
    util::AllocProbe probe;
    const QueryResult steady = engine.Run(query, strategy, &scratch);
    const uint64_t steady_count = probe.Count();
    EXPECT_EQ(steady.clusters.size(), warm.clusters.size());
    EXPECT_EQ(steady.clusters.size(), cold.clusters.size());
    EXPECT_GT(steady_count, 0u);  // O(result) assembly is real
    EXPECT_LE(steady_count, cold_count);
    EXPECT_LE(steady_count, kQueryRunSteadyStateAllocBudget)
        << QueryStrategyName(strategy);
    std::cout << "alloc_probe " << QueryStrategyName(strategy)
              << ": cold=" << cold_count << " steady=" << steady_count
              << " budget=" << kQueryRunSteadyStateAllocBudget << "\n";
  }
}

TEST_F(ServingBudgetTest, ScratchReuseBeatsPerCallScratch) {
  const AnalyticalQuery query = ctx_->WholeAreaQuery(3);
  const QueryEngine engine = Engine();
  QueryScratch scratch;
  const QueryResult warm1 = engine.Run(query, QueryStrategy::kAll, &scratch);
  const QueryResult warm2 = engine.Run(query, QueryStrategy::kAll, &scratch);
  EXPECT_EQ(warm1.clusters.size(), warm2.clusters.size());

  // The convenience overload builds a fresh QueryScratch per call; the
  // serving overload with a warm scratch must allocate strictly less.
  util::AllocProbe fresh_probe;
  const QueryResult fresh = engine.Run(query, QueryStrategy::kAll);
  const uint64_t fresh_count = fresh_probe.Count();
  util::AllocProbe reused_probe;
  const QueryResult reused = engine.Run(query, QueryStrategy::kAll, &scratch);
  const uint64_t reused_count = reused_probe.Count();
  EXPECT_EQ(fresh.clusters.size(), reused.clusters.size());
  EXPECT_LT(reused_count, fresh_count);
}

TEST(SimilarityAllocTest, SimilarityReadyVerdictIsAllocationFree) {
  AtypicalCluster a;
  AtypicalCluster b;
  for (uint32_t k = 0; k < 40; ++k) {
    a.spatial.Add(k, 1.0 + k);
    a.temporal.Add(k % 8, 2.0);
  }
  for (uint32_t k = 20; k < 60; ++k) {
    b.spatial.Add(k, 0.5 + k);
    b.temporal.Add(k % 6, 1.0);
  }
  // Prepay the lazy compaction + sketch builds, as stored forest clusters
  // have them prepaid by the drivers' preparation pass.
  a.spatial.EnsureSimilarityReady();
  a.temporal.EnsureSimilarityReady();
  b.spatial.EnsureSimilarityReady();
  b.temporal.EnsureSimilarityReady();

  SimilarityScanStats stats;
  util::AllocProbe probe;
  const bool fast = ExceedsThreshold(a, b, BalanceFunction::kMin, 0.99,
                                     &stats, /*use_fast_path=*/true);
  const double upper = SimilarityUpperBound(a, b, BalanceFunction::kMin);
  const double exact = Similarity(a, b, BalanceFunction::kMin);
  const bool slow = ExceedsThreshold(a, b, BalanceFunction::kMin, 0.01,
                                     &stats, /*use_fast_path=*/false);
  const uint64_t count = probe.Count();
  EXPECT_EQ(count, 0u);
  EXPECT_FALSE(fast);
  EXPECT_TRUE(slow);
  EXPECT_GE(upper, exact);
}

}  // namespace
}  // namespace atypical
