#include "util/logging.h"

#include <gtest/gtest.h>

#include "util/status.h"

namespace atypical {
namespace {

TEST(LoggingTest, SeverityFilterRoundTrips) {
  const LogSeverity before = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kError);
  EXPECT_EQ(MinLogSeverity(), LogSeverity::kError);
  SetMinLogSeverity(before);
}

TEST(LoggingTest, InfoLogDoesNotAbort) {
  LOG(INFO) << "harmless message " << 42;
  LOG(WARNING) << "harmless warning";
  LOG(ERROR) << "harmless error";
}

TEST(CheckTest, PassingChecksAreSilent) {
  CHECK(true);
  CHECK_EQ(1, 1);
  CHECK_NE(1, 2);
  CHECK_LT(1, 2);
  CHECK_LE(2, 2);
  CHECK_GT(2, 1);
  CHECK_GE(2, 2);
  CHECK_OK(Status::Ok());
}

TEST(CheckTest, ChecksEvaluateOperandsOnce) {
  int calls = 0;
  auto bump = [&]() { return ++calls; };
  CHECK_GE(bump(), 1);
  EXPECT_EQ(calls, 1);
}

TEST(CheckDeathTest, FailedCheckAborts) {
  EXPECT_DEATH(CHECK(false) << "context here", "Check failed: false");
}

TEST(CheckDeathTest, FailedCheckEqPrintsValues) {
  const int a = 3;
  const int b = 7;
  EXPECT_DEATH(CHECK_EQ(a, b), "3 vs 7");
}

TEST(CheckDeathTest, CheckOkPrintsStatus) {
  EXPECT_DEATH(CHECK_OK(DataLossError("bad block")), "data_loss: bad block");
}

TEST(CheckDeathTest, FatalLogAborts) {
  EXPECT_DEATH(LOG(FATAL) << "fatal condition", "fatal condition");
}

}  // namespace
}  // namespace atypical
