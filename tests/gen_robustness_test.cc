// Generator robustness: order independence, config monotonicity, and a
// paper-like-scale smoke test.
#include <gtest/gtest.h>

#include "gen/workload.h"

namespace atypical {
namespace {

TEST(GenRobustnessTest, MonthsAreOrderIndependent) {
  // Generating month 2 before month 0 must give identical data (each day
  // has an independent random stream).
  const auto a = MakeWorkload(WorkloadScale::kTiny, 11);
  const auto b = MakeWorkload(WorkloadScale::kTiny, 11);
  const auto a2 = a->generator->GenerateMonthAtypical(2);
  const auto a0 = a->generator->GenerateMonthAtypical(0);
  const auto b0 = b->generator->GenerateMonthAtypical(0);
  const auto b2 = b->generator->GenerateMonthAtypical(2);
  ASSERT_EQ(a0.size(), b0.size());
  ASSERT_EQ(a2.size(), b2.size());
  EXPECT_TRUE(std::equal(a0.begin(), a0.end(), b0.begin()));
  EXPECT_TRUE(std::equal(a2.begin(), a2.end(), b2.begin()));
}

TEST(GenRobustnessTest, DropoutReducesRecords) {
  auto workload = MakeWorkload(WorkloadScale::kTiny, 13);
  TrafficGenConfig with = workload->gen_config;
  with.record_dropout_prob = 0.3;
  TrafficGenConfig without = workload->gen_config;
  without.record_dropout_prob = 0.0;
  const TrafficGenerator gen_with(*workload->sensors, with);
  const TrafficGenerator gen_without(*workload->sensors, without);
  const auto few = gen_with.GenerateMonthAtypical(0);
  const auto many = gen_without.GenerateMonthAtypical(0);
  EXPECT_LT(few.size(), many.size());
  // ~30% dropped, allow wide slack.
  EXPECT_GT(few.size(), many.size() / 2);
}

TEST(GenRobustnessTest, FlickerIncreasesFragmentationNotMass) {
  auto workload = MakeWorkload(WorkloadScale::kTiny, 17);
  TrafficGenConfig calm = workload->gen_config;
  calm.record_dropout_prob = 0.0;
  calm.congestion.flicker_prob = 0.0;
  TrafficGenConfig flickery = calm;
  flickery.congestion.flicker_prob = 0.4;
  const TrafficGenerator gen_calm(*workload->sensors, calm);
  const TrafficGenerator gen_flicker(*workload->sensors, flickery);
  double calm_mass = 0.0;
  double flicker_mass = 0.0;
  for (const auto& r : gen_calm.GenerateMonthAtypical(0)) {
    calm_mass += static_cast<double>(r.severity_minutes);
  }
  for (const auto& r : gen_flicker.GenerateMonthAtypical(0)) {
    flicker_mass += static_cast<double>(r.severity_minutes);
  }
  EXPECT_LT(flicker_mass, calm_mass);
  EXPECT_GT(flicker_mass, 0.3 * calm_mass);
}

TEST(GenRobustnessTest, ZeroHotspotsStillProducesIncidents) {
  auto workload = MakeWorkload(WorkloadScale::kTiny, 19);
  TrafficGenConfig config = workload->gen_config;
  config.congestion.num_major_hotspots = 0;
  config.congestion.num_minor_hotspots = 0;
  config.congestion.incidents_per_day = 5.0;
  const TrafficGenerator gen(*workload->sensors, config);
  EXPECT_FALSE(gen.GenerateMonthAtypical(0).empty());
}

TEST(GenRobustnessTest, ZeroEverythingIsQuiet) {
  auto workload = MakeWorkload(WorkloadScale::kTiny, 23);
  TrafficGenConfig config = workload->gen_config;
  config.congestion.num_major_hotspots = 0;
  config.congestion.num_minor_hotspots = 0;
  config.congestion.incidents_per_day = 0.0;
  const TrafficGenerator gen(*workload->sensors, config);
  EXPECT_TRUE(gen.GenerateMonthAtypical(0).empty());
  const Dataset month = gen.GenerateMonth(0);
  EXPECT_EQ(month.num_atypical(), 0);
  EXPECT_EQ(month.num_readings(), month.meta().ExpectedReadings());
}

TEST(GenRobustnessTest, PaperLikeScaleConstructs) {
  // The full 4,000-sensor deployment builds and produces one day of sane
  // atypical data (generating whole months at this scale is bench
  // territory).
  const auto workload = MakeWorkload(WorkloadScale::kPaperLike, 3);
  EXPECT_EQ(workload->roads.highways().size(), 38u);
  EXPECT_GT(workload->sensors->num_sensors(), 3000);
  EXPECT_LT(workload->sensors->spacing_miles(), 1.0);
  EXPECT_EQ(workload->gen_config.time_grid.window_minutes(), 5);
  const auto events = workload->generator->congestion().SampleDay(0);
  EXPECT_GT(events.size(), 10u);
  size_t contributions = 0;
  for (const auto& e : events) {
    contributions +=
        workload->generator->congestion()
            .Render(e, workload->gen_config.time_grid)
            .size();
  }
  EXPECT_GT(contributions, 1000u);
}

TEST(GenRobustnessTest, SeverityNeverExceedsWindowLength) {
  const auto workload = MakeWorkload(WorkloadScale::kTiny, 29);
  const float cap =
      static_cast<float>(workload->gen_config.time_grid.window_minutes());
  for (const auto& r : workload->generator->GenerateMonthAtypical(0)) {
    ASSERT_GT(r.severity_minutes, 0.0f);
    ASSERT_LE(r.severity_minutes, cap);
  }
}

}  // namespace
}  // namespace atypical
