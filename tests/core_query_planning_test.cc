// Materialized-level query planning: months/weeks/days plans must conserve
// severity mass exactly and cut integration input counts.
#include <gtest/gtest.h>

#include "analytics/report.h"
#include "core/query.h"

namespace atypical {
namespace {

class QueryPlanningTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Two 7-day "months" => days 0..13 (weeks 0 and 1 are complete).
    ctx_ = analytics::BuildContext(WorkloadScale::kTiny, 2,
                                   analytics::DefaultForestParams(), 101)
               .release();
    ctx_->forest->MaterializeWeeks();
    ctx_->forest->MaterializeMonths(ctx_->days_per_month());
  }
  static void TearDownTestSuite() {
    delete ctx_;
    ctx_ = nullptr;
  }

  static QueryEngine Engine(bool planned) {
    QueryEngineOptions options = analytics::DefaultEngineOptions();
    options.use_materialized_levels = planned;
    return ctx_->MakeEngine(options);
  }

  static double Mass(const QueryResult& r) {
    double total = 0.0;
    for (const AtypicalCluster& c : r.clusters) total += c.severity();
    return total;
  }

  static analytics::ExperimentContext* ctx_;
};

analytics::ExperimentContext* QueryPlanningTest::ctx_ = nullptr;

TEST_F(QueryPlanningTest, FullRangeUsesMonthsOnly) {
  const AnalyticalQuery query = ctx_->WholeAreaQuery(14);
  const QueryResult planned = Engine(true).Run(query, QueryStrategy::kAll);
  EXPECT_GT(planned.cost.materialized_inputs, 0u);
  EXPECT_EQ(planned.cost.days_from_materialized, 14);
  EXPECT_EQ(planned.cost.micro_clusters_in_range, 0u);  // no leaf days
}

TEST_F(QueryPlanningTest, PlannedMassMatchesUnplanned) {
  for (const int days : {7, 10, 14}) {
    const AnalyticalQuery query = ctx_->WholeAreaQuery(days);
    const QueryResult flat = Engine(false).Run(query, QueryStrategy::kAll);
    const QueryResult planned = Engine(true).Run(query, QueryStrategy::kAll);
    EXPECT_NEAR(Mass(flat), Mass(planned), 1e-6) << days << " days";
    // The planned run integrates no more inputs than the flat run.
    EXPECT_LE(planned.cost.input_micro_clusters,
              flat.cost.input_micro_clusters);
  }
}

TEST_F(QueryPlanningTest, PartialRangeMixesLevelsAndDays) {
  // Days 0..9: week 0 (0..6) is materialized and fully inside; days 7..9
  // need leaves; no month fits.
  const AnalyticalQuery query = ctx_->WholeAreaQuery(10);
  const QueryResult planned = Engine(true).Run(query, QueryStrategy::kAll);
  EXPECT_EQ(planned.cost.days_from_materialized, 7);
  EXPECT_GT(planned.cost.micro_clusters_in_range, 0u);
  EXPECT_GT(planned.cost.materialized_inputs, 0u);
}

TEST_F(QueryPlanningTest, MisalignedRangeFallsBackToDays) {
  AnalyticalQuery query = ctx_->WholeAreaQuery(14);
  query.days = DayRange{3, 8};  // straddles the week boundary
  const QueryResult planned = Engine(true).Run(query, QueryStrategy::kAll);
  EXPECT_EQ(planned.cost.materialized_inputs, 0u);
  const QueryResult flat = Engine(false).Run(query, QueryStrategy::kAll);
  EXPECT_NEAR(Mass(flat), Mass(planned), 1e-6);
}

TEST_F(QueryPlanningTest, GuidedIgnoresPlanning) {
  const AnalyticalQuery query = ctx_->WholeAreaQuery(14);
  const QueryResult gui_planned =
      Engine(true).Run(query, QueryStrategy::kGuided);
  EXPECT_EQ(gui_planned.cost.materialized_inputs, 0u);
  const QueryResult gui_flat =
      Engine(false).Run(query, QueryStrategy::kGuided);
  EXPECT_EQ(gui_planned.cost.input_micro_clusters,
            gui_flat.cost.input_micro_clusters);
}

// An empty or inverted day range covers no days: Run returns the
// default-constructed QueryResult and plans nothing (see QueryEngine::Run).
void ExpectDefaultResult(const QueryResult& result) {
  EXPECT_TRUE(result.clusters.empty());
  EXPECT_EQ(result.num_sensors_in_w, 0);
  EXPECT_DOUBLE_EQ(result.threshold, 0.0);
  EXPECT_EQ(result.cost.input_micro_clusters, 0u);
  EXPECT_EQ(result.cost.micro_clusters_in_range, 0u);
  EXPECT_EQ(result.cost.materialized_inputs, 0u);
  EXPECT_EQ(result.cost.days_from_materialized, 0);
  EXPECT_EQ(result.cost.red_zones, 0u);
  EXPECT_EQ(result.cost.regions_checked, 0u);
}

TEST_F(QueryPlanningTest, EmptyRangeReturnsDefaultResult) {
  AnalyticalQuery query = ctx_->WholeAreaQuery(14);
  query.days = DayRange{};  // default {0, -1}: NumDays() == 0
  for (const bool planned : {false, true}) {
    ExpectDefaultResult(Engine(planned).Run(query, QueryStrategy::kAll));
  }
}

TEST_F(QueryPlanningTest, InvertedRangeReturnsDefaultResult) {
  AnalyticalQuery query = ctx_->WholeAreaQuery(14);
  query.days = DayRange{9, 2};  // NumDays() < 0
  for (const bool planned : {false, true}) {
    for (const QueryStrategy strategy :
         {QueryStrategy::kAll, QueryStrategy::kPrune, QueryStrategy::kGuided}) {
      ExpectDefaultResult(Engine(planned).Run(query, strategy));
    }
  }
}

// Regression: a late AddRecords batch used to leave materialized week/month
// macros silently stale — a planned query would keep serving pre-batch
// answers while a flat query saw the new data.  The forest now versions day
// mutations, the planner refuses stale levels (counting them in
// stale_materialized_skipped) and falls back to the leaves, and
// re-materializing clears the staleness.  Uses its own context because the
// late batch mutates the forest the shared fixture tests depend on.
TEST(QueryPlanningStalenessTest, LateBatchChangesPlannedAnswer) {
  const std::unique_ptr<analytics::ExperimentContext> ctx =
      analytics::BuildContext(WorkloadScale::kTiny, 2,
                              analytics::DefaultForestParams(), 101);
  ctx->forest->MaterializeWeeks();
  ctx->forest->MaterializeMonths(ctx->days_per_month());

  QueryEngineOptions planned_options = analytics::DefaultEngineOptions();
  planned_options.use_materialized_levels = true;
  const QueryEngine planned = ctx->MakeEngine(planned_options);
  const QueryEngine flat = ctx->MakeEngine(analytics::DefaultEngineOptions());

  auto mass = [](const QueryResult& r) {
    double total = 0.0;
    for (const AtypicalCluster& c : r.clusters) total += c.severity();
    return total;
  };

  const AnalyticalQuery query = ctx->WholeAreaQuery(14);
  const QueryResult before = planned.Run(query, QueryStrategy::kAll);
  EXPECT_EQ(before.cost.stale_materialized_skipped, 0u);
  EXPECT_EQ(before.cost.days_from_materialized, 14);

  // A late batch for the first stored day: re-feed that day's records.
  const int late_day = ctx->forest->Days().front();
  std::vector<AtypicalRecord> late_batch;
  for (const AtypicalRecord& r : ctx->monthly_atypical[0]) {
    if (ctx->time_grid().DayOfWindow(r.window) == late_day) {
      late_batch.push_back(r);
    }
  }
  ASSERT_FALSE(late_batch.empty());
  ctx->forest->AddRecords(late_batch);
  EXPECT_TRUE(ctx->forest->WeekIsStale(late_day / 7));

  // The planner now refuses the mutated day's week and month and the
  // planned answer changes — it matches the flat (leaf) answer, which sees
  // the extra records, instead of the stale macros.
  const QueryResult after = planned.Run(query, QueryStrategy::kAll);
  EXPECT_GE(after.cost.stale_materialized_skipped, 2u);  // month 0 + week 0
  EXPECT_LT(after.cost.days_from_materialized, 14);
  const QueryResult flat_after = flat.Run(query, QueryStrategy::kAll);
  EXPECT_NEAR(mass(after), mass(flat_after), 1e-6);
  EXPECT_GT(mass(after), mass(before) + 1e-6)
      << "the late batch's severity must reach planned answers";

  // Re-materializing rebuilds the levels at the current version: staleness
  // clears, the full range plans from levels again, the answer is kept.
  ctx->forest->MaterializeWeeks();
  ctx->forest->MaterializeMonths(ctx->days_per_month());
  const QueryResult rebuilt = planned.Run(query, QueryStrategy::kAll);
  EXPECT_EQ(rebuilt.cost.stale_materialized_skipped, 0u);
  EXPECT_EQ(rebuilt.cost.days_from_materialized, 14);
  EXPECT_NEAR(mass(rebuilt), mass(after), 1e-6);
}

TEST_F(QueryPlanningTest, SpatialFilterStillApplies) {
  AnalyticalQuery query = ctx_->WholeAreaQuery(14);
  const GeoRect bounds = query.area;
  query.area = GeoRect{bounds.min_x, bounds.min_y,
                       (bounds.min_x + bounds.max_x) / 2, bounds.max_y};
  const QueryResult planned = Engine(true).Run(query, QueryStrategy::kAll);
  const QueryResult flat = Engine(false).Run(query, QueryStrategy::kAll);
  // Mass agreement can differ here: a materialized macro merges events
  // inside and outside W, so the planned result may carry extra mass from
  // outside — but never less than the flat result restricted to W.
  EXPECT_GE(Mass(planned) + 1e-6, Mass(flat));
}

}  // namespace
}  // namespace atypical
