#include "cps/road_network.h"

#include <gtest/gtest.h>

namespace atypical {
namespace {

RoadNetworkConfig SmallConfig() {
  RoadNetworkConfig config;
  config.num_highways = 10;
  config.area_width_miles = 30.0;
  config.area_height_miles = 20.0;
  config.seed = 5;
  return config;
}

TEST(RoadNetworkTest, GeneratesRequestedHighwayCount) {
  const RoadNetwork net = RoadNetwork::Generate(SmallConfig());
  EXPECT_EQ(net.highways().size(), 10u);
}

TEST(RoadNetworkTest, HighwaysStayInBounds) {
  const RoadNetwork net = RoadNetwork::Generate(SmallConfig());
  const GeoRect bounds = net.bounds();
  for (const Highway& hw : net.highways()) {
    ASSERT_GE(hw.polyline.size(), 2u);
    for (const GeoPoint& p : hw.polyline) {
      EXPECT_TRUE(bounds.Contains(p))
          << hw.name << " point (" << p.x << "," << p.y << ")";
    }
  }
}

TEST(RoadNetworkTest, HighwaysSpanTheArea) {
  const RoadNetwork net = RoadNetwork::Generate(SmallConfig());
  for (const Highway& hw : net.highways()) {
    // Every highway crosses the area, so it must be at least as long as the
    // smaller area dimension.
    EXPECT_GE(hw.length_miles, 19.0) << hw.name;
  }
  EXPECT_GT(net.total_length_miles(), 10 * 19.0);
}

TEST(RoadNetworkTest, PointAtMileInterpolatesMonotonically) {
  const RoadNetwork net = RoadNetwork::Generate(SmallConfig());
  const Highway& hw = net.highway(0);
  const GeoPoint start = hw.PointAtMile(0.0);
  const GeoPoint end = hw.PointAtMile(hw.length_miles);
  EXPECT_EQ(start, hw.polyline.front());
  EXPECT_EQ(end, hw.polyline.back());
  // Walking the highway in steps moves a bounded distance each step.
  GeoPoint prev = start;
  for (double mile = 0.5; mile < hw.length_miles; mile += 0.5) {
    const GeoPoint p = hw.PointAtMile(mile);
    EXPECT_LE(DistanceMiles(prev, p), 0.75);
    prev = p;
  }
}

TEST(RoadNetworkTest, PointAtMileClampsOutOfRange) {
  const RoadNetwork net = RoadNetwork::Generate(SmallConfig());
  const Highway& hw = net.highway(2);
  EXPECT_EQ(hw.PointAtMile(-3.0), hw.polyline.front());
  EXPECT_EQ(hw.PointAtMile(hw.length_miles + 10.0), hw.polyline.back());
}

TEST(RoadNetworkTest, DeterministicPerSeed) {
  const RoadNetwork a = RoadNetwork::Generate(SmallConfig());
  const RoadNetwork b = RoadNetwork::Generate(SmallConfig());
  ASSERT_EQ(a.highways().size(), b.highways().size());
  for (size_t i = 0; i < a.highways().size(); ++i) {
    EXPECT_EQ(a.highways()[i].polyline, b.highways()[i].polyline);
    EXPECT_EQ(a.highways()[i].name, b.highways()[i].name);
  }
}

TEST(RoadNetworkTest, DifferentSeedsGiveDifferentMaps) {
  RoadNetworkConfig config = SmallConfig();
  const RoadNetwork a = RoadNetwork::Generate(config);
  config.seed = 6;
  const RoadNetwork b = RoadNetwork::Generate(config);
  bool any_different = false;
  for (size_t i = 0; i < a.highways().size(); ++i) {
    if (a.highways()[i].polyline != b.highways()[i].polyline) {
      any_different = true;
      break;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(RoadNetworkTest, NamesAreUniqueish) {
  const RoadNetwork net = RoadNetwork::Generate(SmallConfig());
  for (const Highway& hw : net.highways()) {
    EXPECT_FALSE(hw.name.empty());
    EXPECT_EQ(hw.name.substr(0, 2), "I-");
  }
}

TEST(RoadNetworkDeathTest, RejectsBadConfig) {
  RoadNetworkConfig config = SmallConfig();
  config.num_highways = 0;
  EXPECT_DEATH(RoadNetwork::Generate(config), "Check failed");
  config = SmallConfig();
  config.area_width_miles = 0.0;
  EXPECT_DEATH(RoadNetwork::Generate(config), "Check failed");
}

}  // namespace
}  // namespace atypical
