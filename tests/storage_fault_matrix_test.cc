// Salvage reader vs the FaultPlan byte-fault matrix: every fault primitive
// (bit flip, truncation, duplicated range) crossed with every structural
// position (block-count field, CRC field, payload, footer, magic) at the
// first, middle and last block.  Each cell asserts the EXACT SalvageReport
// tally — not just "something was skipped" — so a regression in resync
// arithmetic cannot hide behind a weaker invariant.
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "gen/workload.h"
#include "storage/reader.h"
#include "storage/writer.h"
#include "util/fault.h"
#include "util/logging.h"

namespace atypical {
namespace storage {
namespace {

constexpr uint32_t kBlockRecords = 64;
constexpr uint64_t kNumBlocks = 3;
constexpr size_t kDataStart = sizeof(kMagic) + kFileHeaderBytes;
constexpr size_t kFullBlockBytes =
    kBlockHeaderBytes + kBlockRecords * kWireRecordBytes;
constexpr uint64_t kTotalRecords = kNumBlocks * kBlockRecords;

size_t BlockOffset(uint64_t block) {
  return kDataStart + static_cast<size_t>(block) * kFullBlockBytes;
}

class FaultMatrixTest : public ::testing::Test {
 protected:
  FaultMatrixTest() {
    const auto workload = MakeWorkload(WorkloadScale::kTiny, 4);
    const Dataset full = workload->generator->GenerateMonth(0);
    std::vector<Reading> slice(full.readings().begin(),
                               full.readings().begin() + kTotalRecords);
    dataset_ = Dataset(full.meta(), std::move(slice));
    path_ = ::testing::TempDir() + "/fault_matrix_test.atyp";
    WriterOptions options;
    options.block_records = kBlockRecords;
    CHECK_OK(WriteDataset(dataset_, path_, options).status());
    std::ifstream in(path_, std::ios::binary);
    pristine_.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    CHECK_EQ(pristine_.size(),
             kDataStart + kNumBlocks * kFullBlockBytes + kFooterBytes);
  }
  ~FaultMatrixTest() override { std::remove(path_.c_str()); }

  Result<Dataset> Salvage(const std::vector<uint8_t>& bytes,
                          SalvageReport* report) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),  // NOLINT: byte I/O
              static_cast<std::streamsize>(bytes.size()));
    out.close();
    ReaderOptions options;
    options.salvage = true;
    return ReadDataset(path_, options, report);
  }

  // Strict mode must refuse whatever salvage had to work around.
  void ExpectStrictRejects() {
    EXPECT_EQ(ReadDataset(path_).status().code(), StatusCode::kDataLoss);
  }

  // The surviving records must be the pristine sequence minus whole blocks —
  // never a reordered or partial block.
  void ExpectPrefixBlocks(const Dataset& got, uint64_t skipped_block) {
    const size_t cut = static_cast<size_t>(skipped_block) * kBlockRecords;
    for (size_t i = 0; i < got.readings().size(); ++i) {
      const size_t want_i = i < cut ? i : i + kBlockRecords;
      ASSERT_EQ(got.readings()[i].window, dataset_.readings()[want_i].window);
      ASSERT_EQ(got.readings()[i].sensor, dataset_.readings()[want_i].sensor);
    }
  }

  Dataset dataset_;
  std::string path_;
  std::vector<uint8_t> pristine_;
};

// ---- FlipBit × {count field, CRC field, payload} × {first, mid, last} ----

// Any single-bit flip of a record_count of 64 yields 0 or a value > 64, so
// every cell lands in the implausible-count resync path with one fixed-size
// block charged.
TEST_F(FaultMatrixTest, FlipBitInCountField) {
  for (uint64_t block = 0; block < kNumBlocks; ++block) {
    FaultPlan plan(7000 + block);
    std::vector<uint8_t> bytes = pristine_;
    const size_t at =
        plan.FlipBit(&bytes, BlockOffset(block), BlockOffset(block) + 4);
    SalvageReport report;
    const Result<Dataset> got = Salvage(bytes, &report);
    ASSERT_TRUE(got.ok()) << "bit at " << at << ": " << got.status().ToString();
    EXPECT_EQ(report.blocks_skipped, 1u) << "block " << block;
    ASSERT_EQ(report.skipped_blocks.size(), 1u);
    EXPECT_EQ(report.skipped_blocks[0], block);
    EXPECT_EQ(report.records_recovered, kTotalRecords - kBlockRecords);
    EXPECT_EQ(report.records_lost, kBlockRecords);
    EXPECT_EQ(report.records_duplicated, 0u);
    EXPECT_FALSE(report.footer_missing);
    EXPECT_FALSE(report.clean());
    ExpectPrefixBlocks(*got, block);
    ExpectStrictRejects();
  }
}

// A flipped stored CRC cannot match the (unchanged) payload CRC.
TEST_F(FaultMatrixTest, FlipBitInCrcField) {
  for (uint64_t block = 0; block < kNumBlocks; ++block) {
    FaultPlan plan(7100 + block);
    std::vector<uint8_t> bytes = pristine_;
    plan.FlipBit(&bytes, BlockOffset(block) + 4, BlockOffset(block) + 8);
    SalvageReport report;
    const Result<Dataset> got = Salvage(bytes, &report);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(report.blocks_skipped, 1u);
    ASSERT_EQ(report.skipped_blocks.size(), 1u);
    EXPECT_EQ(report.skipped_blocks[0], block);
    EXPECT_EQ(report.records_recovered, kTotalRecords - kBlockRecords);
    EXPECT_EQ(report.records_lost, kBlockRecords);
    EXPECT_FALSE(report.footer_missing);
    ExpectPrefixBlocks(*got, block);
    ExpectStrictRejects();
  }
}

// A payload flip fails the CRC; the stream is already positioned at the next
// boundary, so exactly one block is charged.
TEST_F(FaultMatrixTest, FlipBitInPayload) {
  for (uint64_t block = 0; block < kNumBlocks; ++block) {
    FaultPlan plan(7200 + block);
    std::vector<uint8_t> bytes = pristine_;
    plan.FlipBit(&bytes, BlockOffset(block) + kBlockHeaderBytes,
                 BlockOffset(block) + kFullBlockBytes);
    SalvageReport report;
    const Result<Dataset> got = Salvage(bytes, &report);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(report.blocks_skipped, 1u);
    ASSERT_EQ(report.skipped_blocks.size(), 1u);
    EXPECT_EQ(report.skipped_blocks[0], block);
    EXPECT_EQ(report.records_recovered, kTotalRecords - kBlockRecords);
    EXPECT_EQ(report.records_lost, kBlockRecords);
    EXPECT_FALSE(report.footer_missing);
    ExpectPrefixBlocks(*got, block);
    ExpectStrictRejects();
  }
}

// ---- Truncation × {block boundary, mid-header, mid-payload} × blocks ----

TEST_F(FaultMatrixTest, TruncateAtBlockBoundary) {
  for (uint64_t block = 0; block < kNumBlocks; ++block) {
    std::vector<uint8_t> bytes = pristine_;
    FaultPlan::TruncateTo(&bytes, BlockOffset(block));
    SalvageReport report;
    const Result<Dataset> got = Salvage(bytes, &report);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    // A clean cut between blocks skips nothing; the only symptom is the
    // missing footer.
    EXPECT_EQ(report.blocks_skipped, 0u);
    EXPECT_EQ(report.records_recovered, block * kBlockRecords);
    EXPECT_EQ(report.records_lost, 0u);
    EXPECT_TRUE(report.footer_missing);
    EXPECT_FALSE(report.clean());
    ExpectStrictRejects();
  }
}

TEST_F(FaultMatrixTest, TruncateMidHeader) {
  for (uint64_t block = 0; block < kNumBlocks; ++block) {
    std::vector<uint8_t> bytes = pristine_;
    FaultPlan::TruncateTo(&bytes, BlockOffset(block) + 3);
    SalvageReport report;
    const Result<Dataset> got = Salvage(bytes, &report);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(report.blocks_skipped, 1u);
    ASSERT_EQ(report.skipped_blocks.size(), 1u);
    EXPECT_EQ(report.skipped_blocks[0], block);
    EXPECT_EQ(report.records_recovered, block * kBlockRecords);
    // A torn header carries no trustworthy count, so nothing is charged to
    // records_lost; footer_missing is the loss signal.
    EXPECT_EQ(report.records_lost, 0u);
    EXPECT_TRUE(report.footer_missing);
    ExpectStrictRejects();
  }
}

TEST_F(FaultMatrixTest, TruncateMidPayload) {
  for (uint64_t block = 0; block < kNumBlocks; ++block) {
    std::vector<uint8_t> bytes = pristine_;
    FaultPlan::TruncateTo(&bytes, BlockOffset(block) + kBlockHeaderBytes + 37);
    SalvageReport report;
    const Result<Dataset> got = Salvage(bytes, &report);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(report.blocks_skipped, 1u);
    ASSERT_EQ(report.skipped_blocks.size(), 1u);
    EXPECT_EQ(report.skipped_blocks[0], block);
    EXPECT_EQ(report.records_recovered, block * kBlockRecords);
    EXPECT_EQ(report.records_lost, kBlockRecords);  // header count survives
    EXPECT_TRUE(report.footer_missing);
    ExpectStrictRejects();
  }
}

// ---- Duplicated range (replayed block) × {first, mid, last} ----

TEST_F(FaultMatrixTest, DuplicatedBlockIsCountedNotSilent) {
  for (uint64_t block = 0; block < kNumBlocks; ++block) {
    std::vector<uint8_t> bytes = pristine_;
    FaultPlan::DuplicateAt(&bytes, BlockOffset(block), kFullBlockBytes);
    SalvageReport report;
    const Result<Dataset> got = Salvage(bytes, &report);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    // Both copies pass their CRC, so both are returned — but the footer
    // count exposes the replay and clean() must break.
    EXPECT_EQ(report.blocks_skipped, 0u);
    EXPECT_EQ(report.records_recovered, kTotalRecords + kBlockRecords);
    EXPECT_EQ(report.records_lost, 0u);
    EXPECT_EQ(report.records_duplicated, kBlockRecords);
    EXPECT_FALSE(report.footer_missing);
    EXPECT_FALSE(report.clean());
    ExpectStrictRejects();
  }
}

// A spliced-out (lost-write) block shifts nothing — the footer count charges
// the loss even though every surviving block is intact.
TEST_F(FaultMatrixTest, SplicedOutBlockChargedByFooter) {
  for (uint64_t block = 0; block < kNumBlocks; ++block) {
    std::vector<uint8_t> bytes = pristine_;
    FaultPlan::SpliceOut(&bytes, BlockOffset(block), kFullBlockBytes);
    SalvageReport report;
    const Result<Dataset> got = Salvage(bytes, &report);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(report.blocks_skipped, 0u);
    EXPECT_EQ(report.records_recovered, kTotalRecords - kBlockRecords);
    EXPECT_EQ(report.records_lost, kBlockRecords);
    EXPECT_EQ(report.records_duplicated, 0u);
    EXPECT_FALSE(report.footer_missing);
    EXPECT_FALSE(report.clean());
    ExpectPrefixBlocks(*got, block);
    ExpectStrictRejects();
  }
}

// ---- File-level positions ----

// Any flip in the magic fails Open in both modes: without the header there
// is no geometry to resync on.
TEST_F(FaultMatrixTest, FlipBitInMagicFailsOpen) {
  FaultPlan plan(7300);
  std::vector<uint8_t> bytes = pristine_;
  plan.FlipBit(&bytes, 0, sizeof(kMagic));
  SalvageReport report;
  EXPECT_EQ(Salvage(bytes, &report).status().code(), StatusCode::kDataLoss);
  ExpectStrictRejects();
}

// A flip in the footer magic demotes the footer to an implausible block
// header: one pseudo-block skipped, then end of file without a footer.
TEST_F(FaultMatrixTest, FlipBitInFooterMagic) {
  FaultPlan plan(7400);
  std::vector<uint8_t> bytes = pristine_;
  const size_t footer_at = pristine_.size() - kFooterBytes;
  plan.FlipBit(&bytes, footer_at, footer_at + 4);
  SalvageReport report;
  const Result<Dataset> got = Salvage(bytes, &report);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(report.records_recovered, kTotalRecords);
  EXPECT_EQ(report.blocks_skipped, 1u);  // the demoted footer
  ASSERT_EQ(report.skipped_blocks.size(), 1u);
  EXPECT_EQ(report.skipped_blocks[0], kNumBlocks);
  EXPECT_EQ(report.records_lost, kBlockRecords);  // resync charge, no footer
  EXPECT_TRUE(report.footer_missing);
  ExpectStrictRejects();
}

// Multi-fault cell: a payload flip in one block AND a truncated tail.  The
// tallies must compose additively.
TEST_F(FaultMatrixTest, ComposedFaultsTallyAdditively) {
  FaultPlan plan(7500);
  std::vector<uint8_t> bytes = pristine_;
  plan.FlipBit(&bytes, BlockOffset(0) + kBlockHeaderBytes,
               BlockOffset(0) + kFullBlockBytes);
  FaultPlan::TruncateTo(&bytes, BlockOffset(2) + kBlockHeaderBytes + 5);
  SalvageReport report;
  const Result<Dataset> got = Salvage(bytes, &report);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(report.blocks_skipped, 2u);
  ASSERT_EQ(report.skipped_blocks.size(), 2u);
  EXPECT_EQ(report.skipped_blocks[0], 0u);
  EXPECT_EQ(report.skipped_blocks[1], 2u);
  EXPECT_EQ(report.records_recovered, kBlockRecords);  // only block 1
  EXPECT_EQ(report.records_lost, 2 * kBlockRecords);
  EXPECT_TRUE(report.footer_missing);
  ExpectStrictRejects();
}

}  // namespace
}  // namespace storage
}  // namespace atypical
