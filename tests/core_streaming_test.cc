// Streaming event retrieval must produce exactly the batch events
// (connected components are order-independent), while bounding open state.
#include "core/streaming.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "analytics/report.h"
#include "gen/workload.h"
#include "util/hash_perturb.h"
#include "util/random.h"
#include "util/string_util.h"

namespace atypical {
namespace {

class StreamingTest : public ::testing::Test {
 public:
  StreamingTest()
      : workload_(MakeWorkload(WorkloadScale::kTiny, 61)),
        grid_(workload_->gen_config.time_grid),
        params_(analytics::DefaultForestParams().retrieval) {}

  // Canonical signature of a cluster set: sorted (sensor set, window set,
  // severity) triples — ids and ordering differ between batch and stream.
  static std::multiset<std::string> Signatures(
      const std::vector<AtypicalCluster>& clusters) {
    std::multiset<std::string> out;
    for (const AtypicalCluster& c : clusters) {
      std::string sig;
      for (const auto& e : c.spatial.entries()) {
        sig += StrPrintf("s%u:%.1f;", e.key, e.severity);
      }
      sig += "|";
      for (const auto& e : c.temporal.entries()) {
        sig += StrPrintf("t%u:%.1f;", e.key, e.severity);
      }
      out.insert(std::move(sig));
    }
    return out;
  }

  std::unique_ptr<Workload> workload_;
  TimeGrid grid_;
  RetrievalParams params_;
};

TEST_F(StreamingTest, MatchesBatchRetrievalOnGeneratedMonth) {
  const std::vector<AtypicalRecord> records =
      workload_->generator->GenerateMonthAtypical(0);
  ClusterIdGenerator batch_ids(1);
  ClusterIdGenerator stream_ids(100000);
  const auto batch = RetrieveMicroClusters(records, *workload_->sensors,
                                           grid_, params_, &batch_ids);
  const auto streamed = StreamMicroClusters(records, *workload_->sensors,
                                            grid_, params_, &stream_ids);
  ASSERT_EQ(streamed.size(), batch.size());
  EXPECT_EQ(Signatures(streamed), Signatures(batch));
}

class StreamingSweepTest
    : public ::testing::TestWithParam<std::pair<double, int>> {};

TEST_P(StreamingSweepTest, MatchesBatchAcrossThresholds) {
  const auto [delta_d, delta_t] = GetParam();
  const auto workload = MakeWorkload(WorkloadScale::kTiny, 67);
  const TimeGrid grid = workload->gen_config.time_grid;
  RetrievalParams params;
  params.delta_d_miles = delta_d;
  params.delta_t_minutes = delta_t;
  const std::vector<AtypicalRecord> records =
      workload->generator->GenerateMonthAtypical(1);
  ClusterIdGenerator ids_a(1);
  ClusterIdGenerator ids_b(1);
  const auto batch = RetrieveMicroClusters(records, *workload->sensors, grid,
                                           params, &ids_a);
  const auto streamed = StreamMicroClusters(records, *workload->sensors, grid,
                                            params, &ids_b);
  EXPECT_EQ(StreamingTest::Signatures(streamed),
            StreamingTest::Signatures(batch));
}

INSTANTIATE_TEST_SUITE_P(
    Thresholds, StreamingSweepTest,
    ::testing::Values(std::pair{1.5, 15}, std::pair{1.5, 30},
                      std::pair{0.8, 15}, std::pair{3.0, 45},
                      std::pair{6.0, 80}));

TEST_F(StreamingTest, EmitsEventsAsTheyExpire) {
  // Two bursts far apart in time: the first event must be emitted before
  // the second burst's records are all in.
  const SensorId sensor = 0;
  std::vector<AtypicalCluster> emitted;
  ClusterIdGenerator ids(1);
  StreamingEventBuilder builder(
      workload_->sensors.get(), grid_, params_, &ids,
      [&](AtypicalCluster c) { emitted.push_back(std::move(c)); });

  builder.Add({sensor, grid_.MakeWindow(0, 10), 5.0f, kNoEvent});
  builder.Add({sensor, grid_.MakeWindow(0, 11), 5.0f, kNoEvent});
  EXPECT_EQ(emitted.size(), 0u);
  EXPECT_EQ(builder.open_events(), 1u);

  builder.Add({sensor, grid_.MakeWindow(0, 50), 5.0f, kNoEvent});
  EXPECT_EQ(emitted.size(), 1u);  // first burst closed
  EXPECT_DOUBLE_EQ(emitted[0].severity(), 10.0);
  EXPECT_EQ(builder.open_events(), 1u);

  builder.Flush();
  EXPECT_EQ(emitted.size(), 2u);
  EXPECT_EQ(builder.open_events(), 0u);
}

TEST_F(StreamingTest, BridgingRecordMergesOpenEvents) {
  // Two sensors too far apart to relate directly, plus a bridging record in
  // between: all three must end in one event.
  SensorId a = kInvalidSensor;
  SensorId b = kInvalidSensor;
  SensorId mid = kInvalidSensor;
  for (int h = 0; h < workload_->sensors->num_highways() && mid == kInvalidSensor;
       ++h) {
    const auto& line = workload_->sensors->SensorsOnHighway(h);
    for (size_t i = 0; i + 2 < line.size(); ++i) {
      const double d02 = DistanceMiles(
          workload_->sensors->location(line[i]),
          workload_->sensors->location(line[i + 2]));
      const double d01 = DistanceMiles(
          workload_->sensors->location(line[i]),
          workload_->sensors->location(line[i + 1]));
      const double d12 = DistanceMiles(
          workload_->sensors->location(line[i + 1]),
          workload_->sensors->location(line[i + 2]));
      if (d02 >= params_.delta_d_miles && d01 < params_.delta_d_miles &&
          d12 < params_.delta_d_miles) {
        a = line[i];
        mid = line[i + 1];
        b = line[i + 2];
        break;
      }
    }
  }
  if (mid == kInvalidSensor) GTEST_SKIP() << "no suitable sensor triple";

  std::vector<AtypicalCluster> emitted;
  ClusterIdGenerator ids(1);
  StreamingEventBuilder builder(
      workload_->sensors.get(), grid_, params_, &ids,
      [&](AtypicalCluster c) { emitted.push_back(std::move(c)); });
  const WindowId w = grid_.MakeWindow(0, 30);
  builder.Add({a, w, 5.0f, kNoEvent});
  builder.Add({b, w, 5.0f, kNoEvent});
  EXPECT_EQ(builder.open_events(), 2u);
  builder.Add({mid, w, 5.0f, kNoEvent});
  EXPECT_EQ(builder.open_events(), 1u);
  builder.Flush();
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0].num_sensors(), 3);
}

TEST_F(StreamingTest, OpenStateStaysBounded) {
  // Open events never exceed what fits in the δt horizon.
  const std::vector<AtypicalRecord> records =
      workload_->generator->GenerateMonthAtypical(0);
  ClusterIdGenerator ids(1);
  size_t max_open = 0;
  size_t total = 0;
  StreamingEventBuilder builder(
      workload_->sensors.get(), grid_, params_, &ids,
      [&](AtypicalCluster) { ++total; });
  for (const AtypicalRecord& r : records) {
    builder.Add(r);
    max_open = std::max(max_open, builder.open_events());
  }
  builder.Flush();
  EXPECT_GT(total, 0u);
  // All concurrently-open events live within a 2·δt horizon; with tens of
  // sensors that is far below the total event count.
  EXPECT_LT(max_open, total);
  EXPECT_LT(max_open, 64u);
}

TEST_F(StreamingTest, EmptyStreamFlushesNothing) {
  ClusterIdGenerator ids(1);
  size_t emitted = 0;
  StreamingEventBuilder builder(workload_->sensors.get(), grid_, params_,
                                &ids, [&](AtypicalCluster) { ++emitted; });
  builder.Flush();
  EXPECT_EQ(emitted, 0u);
  EXPECT_EQ(builder.records_seen(), 0u);
}

TEST_F(StreamingTest, FlushEmitsOpenEventsInDeterministicClosingOrder) {
  // Three events opened in a known order and still open at end of stream:
  // Flush must emit them in that same (opening) order, every run.
  std::vector<SensorId> apart;  // pairwise too far apart to relate
  for (SensorId s = 0; s < static_cast<SensorId>(workload_->sensors->num_sensors()) &&
                       apart.size() < 3;
       ++s) {
    const bool far = std::all_of(apart.begin(), apart.end(), [&](SensorId t) {
      return workload_->sensors->Distance(s, t, params_.metric) >=
             2 * params_.delta_d_miles;
    });
    if (far) apart.push_back(s);
  }
  ASSERT_EQ(apart.size(), 3u) << "workload too small for this test";

  const WindowId w = grid_.MakeWindow(0, 30);
  std::vector<std::multiset<std::string>> runs;
  for (int run = 0; run < 2; ++run) {
    std::vector<AtypicalCluster> emitted;
    ClusterIdGenerator ids(1);
    StreamingEventBuilder builder(
        workload_->sensors.get(), grid_, params_, &ids,
        [&](AtypicalCluster c) { emitted.push_back(std::move(c)); });
    // Distinct severities identify which event is which.
    builder.Add({apart[0], w, 1.0f, kNoEvent});
    builder.Add({apart[1], w, 2.0f, kNoEvent});
    builder.Add({apart[2], w, 3.0f, kNoEvent});
    const size_t opened = builder.open_events();
    EXPECT_EQ(opened, 3u);
    EXPECT_EQ(builder.records_seen(), 3u);
    builder.Flush();
    ASSERT_EQ(emitted.size(), opened);
    // Closing order == opening order: severities ascend.
    for (size_t i = 1; i < emitted.size(); ++i) {
      EXPECT_LT(emitted[i - 1].severity(), emitted[i].severity());
    }
    runs.push_back(Signatures(emitted));
  }
  EXPECT_EQ(runs[0], runs[1]);
}

TEST_F(StreamingTest, FlushAccountsForEveryRecordSeen) {
  const std::vector<AtypicalRecord> records =
      workload_->generator->GenerateMonthAtypical(0);
  size_t emitted_records = 0;
  ClusterIdGenerator ids(1);
  StreamingEventBuilder builder(
      workload_->sensors.get(), grid_, params_, &ids,
      [&](AtypicalCluster c) {
        emitted_records += static_cast<size_t>(c.num_records);
      });
  for (const AtypicalRecord& r : records) builder.Add(r);
  builder.Flush();
  EXPECT_EQ(builder.records_seen(), records.size());
  EXPECT_EQ(emitted_records, records.size());
  EXPECT_EQ(builder.open_events(), 0u);
  // Flushing again is a no-op, not a re-emit.
  builder.Flush();
  EXPECT_EQ(emitted_records, records.size());
  EXPECT_EQ(builder.records_seen(), records.size());
}

TEST_F(StreamingTest, DiesOnOutOfOrderRecords) {
  ClusterIdGenerator ids(1);
  StreamingEventBuilder builder(workload_->sensors.get(), grid_, params_,
                                &ids, [](AtypicalCluster) {});
  builder.Add({0, grid_.MakeWindow(0, 20), 5.0f, kNoEvent});
  EXPECT_DEATH(builder.Add({0, grid_.MakeWindow(0, 19), 5.0f, kNoEvent}),
               "non-decreasing window order");
}

TEST_F(StreamingTest, MergedEventRecordOrderMatchesBatchBitwise) {
  // Regression: a bridging merge used to re-sort the combined records by
  // window only, so equal-window records interleaved across the two events
  // lost their global arrival order — and the feature sums, accumulated in
  // a different floating-point order, silently drifted from batch at the
  // bit level.  The arrival-seq sort must reproduce batch exactly.
  //
  // Road-network distances make the bridging triple constructible: three
  // consecutive sensors on one highway at mileposts m0 < m1 < m2 with
  // δd = m2 - m0 give d01, d12 < δd (related) and d02 = δd (not related,
  // the relation is strict <).
  SensorId a = kInvalidSensor;
  SensorId mid = kInvalidSensor;
  SensorId b = kInvalidSensor;
  for (int h = 0; h < workload_->sensors->num_highways(); ++h) {
    const auto& line = workload_->sensors->SensorsOnHighway(h);
    if (line.size() >= 3) {
      a = line[0];
      mid = line[1];
      b = line[2];
      break;
    }
  }
  ASSERT_NE(mid, kInvalidSensor) << "no highway with three sensors";
  RetrievalParams params = params_;
  params.metric = DistanceMetric::kRoadNetwork;
  params.delta_d_miles = workload_->sensors->sensor(b).mile_post -
                         workload_->sensors->sensor(a).mile_post;

  // Two same-window record groups interleaved in arrival order, then the
  // bridge.  The severities span ~2^40 in magnitude so double summation
  // rounds: float inputs within a narrow exponent range sum exactly in any
  // order (24-bit mantissas in a 52-bit accumulator), which would hide a
  // reorder.  With the spread, the shared window's severity sum has
  // order-dependent low bits (verified: the pre-fix window-keyed re-sort
  // fails this test).
  Rng severity_rng(1);
  const WindowId w = grid_.MakeWindow(0, 30);
  std::vector<AtypicalRecord> feed;
  for (int i = 0; i < 20; ++i) {
    feed.push_back(
        {a, w, static_cast<float>(severity_rng.Uniform(1.0, 13.0)), kNoEvent});
    feed.push_back(
        {b, w, static_cast<float>(1e-12 * severity_rng.Uniform(1.0, 10.0)),
         kNoEvent});
  }
  feed.push_back({mid, w, 5.0f, kNoEvent});

  for (const uint64_t perturbation : {uint64_t{0}, uint64_t{257},
                                      uint64_t{7919}}) {
    SetHashLayoutPerturbation(perturbation);
    ClusterIdGenerator batch_ids(1);
    const auto batch = RetrieveMicroClusters(feed, *workload_->sensors, grid_,
                                             params, &batch_ids);
    std::vector<AtypicalCluster> streamed;
    uint64_t first_seq = ~uint64_t{0};
    ClusterIdGenerator stream_ids(1);
    StreamingEventBuilder builder(
        workload_->sensors.get(), grid_, params, &stream_ids,
        [&](AtypicalCluster c, uint64_t seq) {
          streamed.push_back(std::move(c));
          first_seq = seq;
        });
    for (const AtypicalRecord& r : feed) builder.Add(r);
    builder.Flush();

    ASSERT_EQ(batch.size(), 1u) << "perturbation " << perturbation;
    ASSERT_EQ(streamed.size(), 1u) << "perturbation " << perturbation;
    // The merged event's earliest record is the very first fed record.
    EXPECT_EQ(first_seq, 0u);
    // Bit-exact feature equality, not the %.1f signature approximation.
    EXPECT_EQ(streamed[0].spatial, batch[0].spatial)
        << "perturbation " << perturbation;
    EXPECT_EQ(streamed[0].temporal, batch[0].temporal)
        << "perturbation " << perturbation;
    EXPECT_EQ(streamed[0].num_records, batch[0].num_records);
  }
  SetHashLayoutPerturbation(0);
}

TEST_F(StreamingTest, FlushAloneDoesNotRearmForANewDay) {
  // Regression for the documented misuse: Flush() clears the open events
  // but keeps the window watermark, so feeding the next day's (restarted)
  // window ids must die — Reset() is the supported path.
  ClusterIdGenerator ids(1);
  StreamingEventBuilder builder(workload_->sensors.get(), grid_, params_,
                                &ids, [](AtypicalCluster) {});
  builder.Add({0, grid_.MakeWindow(1, 10), 5.0f, kNoEvent});
  builder.Flush();
  EXPECT_DEATH(builder.Add({0, grid_.MakeWindow(0, 5), 5.0f, kNoEvent}),
               "non-decreasing window order");
}

TEST_F(StreamingTest, ResetServesConsecutiveDays) {
  const std::vector<AtypicalRecord> day0 =
      workload_->generator->GenerateMonthAtypical(0);
  const std::vector<AtypicalRecord> day1 =
      workload_->generator->GenerateMonthAtypical(1);

  std::vector<AtypicalCluster> emitted;
  ClusterIdGenerator ids(1);
  StreamingEventBuilder builder(
      workload_->sensors.get(), grid_, params_, &ids,
      [&](AtypicalCluster c) { emitted.push_back(std::move(c)); });

  for (const AtypicalRecord& r : day0) builder.Add(r);
  builder.Reset();
  EXPECT_EQ(builder.records_seen(), 0u);
  EXPECT_EQ(builder.open_events(), 0u);
  const size_t after_day0 = emitted.size();

  // Same builder, restarted window ids: must not die, and must reproduce
  // the second stream's batch events.
  for (const AtypicalRecord& r : day1) builder.Add(r);
  builder.Flush();

  ClusterIdGenerator batch_ids(1);
  const auto batch0 = RetrieveMicroClusters(day0, *workload_->sensors, grid_,
                                            params_, &batch_ids);
  const auto batch1 = RetrieveMicroClusters(day1, *workload_->sensors, grid_,
                                            params_, &batch_ids);
  EXPECT_EQ(after_day0, batch0.size());
  EXPECT_EQ(Signatures({emitted.begin(),
                        emitted.begin() + static_cast<long>(after_day0)}),
            Signatures(batch0));
  EXPECT_EQ(Signatures({emitted.begin() + static_cast<long>(after_day0),
                        emitted.end()}),
            Signatures(batch1));
}

}  // namespace
}  // namespace atypical
