#include "gen/traffic_model.h"

#include <gtest/gtest.h>

#include "cps/road_network.h"

namespace atypical {
namespace {

class TrafficModelTest : public ::testing::Test {
 protected:
  TrafficModelTest() {
    RoadNetworkConfig roads_config;
    roads_config.num_highways = 6;
    roads_config.area_width_miles = 15.0;
    roads_config.area_height_miles = 10.0;
    roads_ = RoadNetwork::Generate(roads_config);
    SensorNetworkConfig sensors_config;
    sensors_config.target_num_sensors = 50;
    network_ = std::make_unique<SensorNetwork>(
        SensorNetwork::Place(roads_, sensors_config));
    model_ = std::make_unique<TrafficModel>(*network_, TrafficModelConfig{});
  }

  RoadNetwork roads_;
  std::unique_ptr<SensorNetwork> network_;
  std::unique_ptr<TrafficModel> model_;
};

TEST(DiurnalDemandTest, WeekdayRushPeaksDominateNight) {
  const double am_rush = DiurnalDemand(8 * 60, /*weekend=*/false);
  const double pm_rush = DiurnalDemand(17 * 60 + 30, /*weekend=*/false);
  const double night = DiurnalDemand(3 * 60, /*weekend=*/false);
  EXPECT_GT(am_rush, 0.8);
  EXPECT_GT(pm_rush, 0.8);
  EXPECT_LT(night, 0.25);
}

TEST(DiurnalDemandTest, WeekendHasMiddayPeakNoRush) {
  const double midday = DiurnalDemand(13 * 60, /*weekend=*/true);
  const double am = DiurnalDemand(8 * 60, /*weekend=*/true);
  EXPECT_GT(midday, am);
  EXPECT_LT(DiurnalDemand(8 * 60, true), DiurnalDemand(8 * 60, false));
}

TEST(DiurnalDemandTest, BoundedInUnitInterval) {
  for (int m = 0; m < 1440; m += 7) {
    for (bool weekend : {false, true}) {
      const double d = DiurnalDemand(m, weekend);
      EXPECT_GE(d, 0.0);
      EXPECT_LE(d, 1.0);
    }
  }
}

TEST(DiurnalDemandTest, WrapsModulo1440) {
  EXPECT_DOUBLE_EQ(DiurnalDemand(8 * 60, false),
                   DiurnalDemand(8 * 60 + 1440, false));
  EXPECT_DOUBLE_EQ(DiurnalDemand(-60, false), DiurnalDemand(1380, false));
}

TEST(IsWeekendTest, Day0IsMonday) {
  EXPECT_FALSE(IsWeekend(0));  // Monday
  EXPECT_FALSE(IsWeekend(4));  // Friday
  EXPECT_TRUE(IsWeekend(5));   // Saturday
  EXPECT_TRUE(IsWeekend(6));   // Sunday
  EXPECT_FALSE(IsWeekend(7));  // next Monday
  EXPECT_TRUE(IsWeekend(12));  // next Saturday
}

TEST_F(TrafficModelTest, FreeFlowSpeedsNearConfiguredMean) {
  double sum = 0.0;
  for (int s = 0; s < network_->num_sensors(); ++s) {
    const double ff = model_->free_flow_mph(s);
    EXPECT_GT(ff, 40.0);
    EXPECT_LT(ff, 90.0);
    sum += ff;
  }
  EXPECT_NEAR(sum / network_->num_sensors(), 65.0, 3.0);
}

TEST_F(TrafficModelTest, BaseSpeedDipsAtRushHour) {
  const double rush = model_->BaseSpeed(0, 8 * 60, false);
  const double night = model_->BaseSpeed(0, 3 * 60, false);
  EXPECT_LT(rush, night);
  EXPECT_GT(rush, 0.7 * model_->free_flow_mph(0));
}

TEST_F(TrafficModelTest, ObservedSpeedDropsWithCongestion) {
  Rng rng(1);
  double free_sum = 0.0;
  double jam_sum = 0.0;
  for (int i = 0; i < 200; ++i) {
    free_sum += model_->ObservedSpeed(0, 600, false, 0.0, rng);
    jam_sum += model_->ObservedSpeed(0, 600, false, 1.0, rng);
  }
  EXPECT_LT(jam_sum / 200.0, 25.0);
  EXPECT_GT(free_sum / 200.0, 45.0);
}

TEST_F(TrafficModelTest, ObservedSpeedNeverNonPositive) {
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    EXPECT_GE(model_->ObservedSpeed(1, i % 1440, i % 2 == 0, 1.0, rng), 2.0);
  }
}

TEST_F(TrafficModelTest, OccupancyDecreasesWithSpeed) {
  const double slow = model_->Occupancy(10.0, 0);
  const double mid = model_->Occupancy(40.0, 0);
  const double fast = model_->Occupancy(model_->free_flow_mph(0), 0);
  EXPECT_GT(slow, mid);
  EXPECT_GT(mid, fast);
  EXPECT_GE(fast, 0.0);
  EXPECT_LE(slow, 1.0);
}

TEST_F(TrafficModelTest, DeterministicPerSeed) {
  const TrafficModel other(*network_, TrafficModelConfig{});
  for (int s = 0; s < network_->num_sensors(); ++s) {
    EXPECT_DOUBLE_EQ(model_->free_flow_mph(s), other.free_flow_mph(s));
  }
}

}  // namespace
}  // namespace atypical
