#include "cps/dataset.h"

#include <gtest/gtest.h>

namespace atypical {
namespace {

Dataset MakeDataset() {
  DatasetMeta meta;
  meta.month_index = 0;
  meta.first_day = 0;
  meta.num_days = 1;
  meta.num_sensors = 3;
  meta.time_grid = TimeGrid(15);
  meta.name = "D1";

  std::vector<Reading> readings;
  for (int w = 0; w < 4; ++w) {
    for (SensorId s = 0; s < 3; ++s) {
      Reading r;
      r.sensor = s;
      r.window = w;
      r.speed_mph = 60.0f;
      r.occupancy = 0.1f;
      // Sensor 1 is atypical in windows 1 and 2.
      if (s == 1 && (w == 1 || w == 2)) {
        r.atypical_minutes = 5.0f;
        r.true_event = 42;
        r.speed_mph = 20.0f;
      }
      readings.push_back(r);
    }
  }
  return Dataset(meta, std::move(readings));
}

TEST(DatasetMetaTest, ShapeArithmetic) {
  const Dataset ds = MakeDataset();
  EXPECT_EQ(ds.meta().TotalWindows(), 96);
  EXPECT_EQ(ds.meta().ExpectedReadings(), 96 * 3);
  EXPECT_EQ(ds.meta().Days().first_day, 0);
  EXPECT_EQ(ds.meta().Days().last_day, 0);
}

TEST(DatasetTest, CountsAtypicalReadings) {
  const Dataset ds = MakeDataset();
  EXPECT_EQ(ds.num_readings(), 12);
  EXPECT_EQ(ds.num_atypical(), 2);
  EXPECT_NEAR(ds.atypical_fraction(), 2.0 / 12.0, 1e-12);
}

TEST(DatasetTest, TotalSeverity) {
  const Dataset ds = MakeDataset();
  EXPECT_DOUBLE_EQ(ds.total_severity_minutes(), 10.0);
}

TEST(DatasetTest, ExtractAtypicalRecordsKeepsOnlyAtypical) {
  const Dataset ds = MakeDataset();
  const std::vector<AtypicalRecord> records = ds.ExtractAtypicalRecords();
  ASSERT_EQ(records.size(), 2u);
  for (const AtypicalRecord& r : records) {
    EXPECT_EQ(r.sensor, 1u);
    EXPECT_EQ(r.severity_minutes, 5.0f);
    EXPECT_EQ(r.true_event, 42u);
  }
  EXPECT_EQ(records[0].window, 1u);
  EXPECT_EQ(records[1].window, 2u);
}

TEST(DatasetTest, EmptyDatasetBehaves) {
  Dataset ds;
  EXPECT_EQ(ds.num_readings(), 0);
  EXPECT_EQ(ds.num_atypical(), 0);
  EXPECT_DOUBLE_EQ(ds.atypical_fraction(), 0.0);
  EXPECT_TRUE(ds.ExtractAtypicalRecords().empty());
}

TEST(DatasetTest, ByteSizeTracksReadingCount) {
  const Dataset ds = MakeDataset();
  EXPECT_EQ(ds.ByteSize(), 12 * sizeof(Reading));
}

TEST(ReadingTest, IsAtypicalFlag) {
  Reading r;
  EXPECT_FALSE(r.is_atypical());
  r.atypical_minutes = 0.1f;
  EXPECT_TRUE(r.is_atypical());
}

}  // namespace
}  // namespace atypical
