#include "gen/congestion_process.h"

#include <set>

#include <gtest/gtest.h>

#include "gen/traffic_model.h"

namespace atypical {
namespace {

class CongestionProcessTest : public ::testing::Test {
 protected:
  CongestionProcessTest() {
    RoadNetworkConfig roads_config;
    roads_config.num_highways = 8;
    roads_config.area_width_miles = 15.0;
    roads_config.area_height_miles = 12.0;
    roads_config.seed = 21;
    roads_ = RoadNetwork::Generate(roads_config);
    SensorNetworkConfig sensors_config;
    sensors_config.target_num_sensors = 100;
    network_ = std::make_unique<SensorNetwork>(
        SensorNetwork::Place(roads_, sensors_config));
    CongestionProcessConfig config;
    config.num_major_hotspots = 3;
    config.num_minor_hotspots = 4;
    config.incidents_per_day = 8.0;
    process_ = std::make_unique<CongestionProcess>(*network_, config);
    grid_ = TimeGrid(15);
  }

  RoadNetwork roads_;
  std::unique_ptr<SensorNetwork> network_;
  std::unique_ptr<CongestionProcess> process_;
  TimeGrid grid_;
};

TEST_F(CongestionProcessTest, PlacesRequestedHotspots) {
  ASSERT_EQ(process_->hotspots().size(), 7u);
  int majors = 0;
  for (const Hotspot& h : process_->hotspots()) {
    if (h.major) ++majors;
    const auto& line = network_->SensorsOnHighway(h.highway);
    EXPECT_GE(h.center_index, 0);
    EXPECT_LT(h.center_index, static_cast<int>(line.size()));
    EXPECT_GE(h.peak_minute_of_day, 5 * 60);
    EXPECT_LE(h.peak_minute_of_day, 21 * 60);
    if (h.major) {
      EXPECT_TRUE(h.peak_minute_of_day == 8 * 60 ||
                  h.peak_minute_of_day == 17 * 60 + 30);
    }
  }
  EXPECT_EQ(majors, 3);
}

TEST_F(CongestionProcessTest, MajorHotspotsAreBiggerAndMoreFrequent) {
  for (const Hotspot& h : process_->hotspots()) {
    if (h.major) {
      EXPECT_GE(h.weekday_probability, 0.8);
      EXPECT_GE(h.peak_radius_sensors, 5.0);
    } else {
      EXPECT_LE(h.weekday_probability, 0.85);
      EXPECT_LE(h.peak_radius_sensors, 4.5);
      // Minor hotspots have a finite active span (road works).
      EXPECT_GE(h.active_first_day, 0);
      EXPECT_NE(h.active_last_day, INT32_MAX);
      EXPECT_GE(h.active_last_day, h.active_first_day);
    }
  }
}

TEST_F(CongestionProcessTest, SampleDayIsDeterministic) {
  const auto a = process_->SampleDay(3);
  const auto b = process_->SampleDay(3);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].start_minute, b[i].start_minute);
    EXPECT_EQ(a[i].center_index, b[i].center_index);
  }
}

TEST_F(CongestionProcessTest, EventIdsUniqueAcrossDays) {
  std::set<EventId> ids;
  size_t total = 0;
  for (int day = 0; day < 20; ++day) {
    for (const auto& e : process_->SampleDay(day)) {
      ids.insert(e.id);
      ++total;
      EXPECT_NE(e.id, kNoEvent);
    }
  }
  EXPECT_EQ(ids.size(), total);
}

TEST_F(CongestionProcessTest, WeekendsHaveFewerHotspotEvents) {
  int weekday_hotspots = 0;
  int weekend_hotspots = 0;
  for (int day = 0; day < 70; ++day) {
    for (const auto& e : process_->SampleDay(day)) {
      if (!e.from_hotspot) continue;
      if (IsWeekend(day)) {
        ++weekend_hotspots;
      } else {
        ++weekday_hotspots;
      }
    }
  }
  // 50 weekdays vs 20 weekend days; rates differ by ~5x on top of that.
  EXPECT_GT(weekday_hotspots, 4 * weekend_hotspots);
}

TEST_F(CongestionProcessTest, RenderKeepsContributionsOnHighwayAndInDay) {
  for (int day = 0; day < 5; ++day) {
    for (const auto& e : process_->SampleDay(day)) {
      const auto contributions = process_->Render(e, grid_);
      const auto& line = network_->SensorsOnHighway(e.highway);
      const std::set<SensorId> line_set(line.begin(), line.end());
      for (const auto& c : contributions) {
        EXPECT_TRUE(line_set.contains(c.sensor));
        EXPECT_GE(c.window_of_day, 0);
        EXPECT_LT(c.window_of_day, grid_.WindowsPerDay());
        EXPECT_GT(c.minutes, 0.0f);
        EXPECT_LE(c.minutes, static_cast<float>(grid_.window_minutes()));
        EXPECT_EQ(c.event, e.id);
      }
    }
  }
}

TEST_F(CongestionProcessTest, EventsGrowThenShrink) {
  // Find a sizable hotspot event and check its per-window sensor counts
  // follow a rise-then-fall envelope.
  for (int day = 0; day < 10; ++day) {
    for (const auto& e : process_->SampleDay(day)) {
      if (!e.from_hotspot || e.duration_minutes < 120) continue;
      const auto contributions = process_->Render(e, grid_);
      std::map<int, int> sensors_per_window;
      for (const auto& c : contributions) ++sensors_per_window[c.window_of_day];
      ASSERT_GE(sensors_per_window.size(), 4u);
      const int first = sensors_per_window.begin()->second;
      const int last = sensors_per_window.rbegin()->second;
      int peak = 0;
      for (const auto& [w, n] : sensors_per_window) peak = std::max(peak, n);
      EXPECT_GT(peak, first);
      EXPECT_GT(peak, last);
      return;  // one good event suffices
    }
  }
  FAIL() << "no long hotspot event found in 10 days";
}

TEST_F(CongestionProcessTest, RenderRespectsEventTimeSpan) {
  for (const auto& e : process_->SampleDay(1)) {
    const int first_window = e.start_minute / grid_.window_minutes();
    const int last_window =
        (e.start_minute + e.duration_minutes - 1) / grid_.window_minutes();
    for (const auto& c : process_->Render(e, grid_)) {
      EXPECT_GE(c.window_of_day, first_window);
      EXPECT_LE(c.window_of_day, last_window);
    }
  }
}

TEST_F(CongestionProcessTest, IncidentsAreSmall) {
  for (int day = 0; day < 10; ++day) {
    for (const auto& e : process_->SampleDay(day)) {
      if (e.from_hotspot) continue;
      EXPECT_LE(e.duration_minutes, 60);
      EXPECT_LE(e.peak_radius, 3.0);
    }
  }
}

}  // namespace
}  // namespace atypical
