// Precision/recall protocols on hand-built cluster sets with known masses.
#include "analytics/metrics.h"

#include <gtest/gtest.h>

#include "analytics/ground_truth.h"

namespace atypical {
namespace analytics {
namespace {

// Builds a macro-cluster from (micro id, severity) pairs; the macro's own
// severity is the sum.
AtypicalCluster Macro(ClusterId id,
                      std::vector<std::pair<ClusterId, double>> micros) {
  AtypicalCluster c;
  c.id = id;
  double total = 0.0;
  for (const auto& [mid, severity] : micros) {
    c.micro_ids.push_back(mid);
    total += severity;
  }
  c.spatial.Add(1, total);  // severity carrier
  return c;
}

struct Fixture {
  QueryResult all;
  std::map<ClusterId, double> micro_severity;
  GroundTruth gt;
};

// Universe: micros 1..6 with severities 100, 90, 80, 5, 4, 3.
// All's macros: G1 = {1,2} (190), G2 = {3} (80), T1 = {4,5} (9), T2 = {6} (3).
// Threshold 50 -> significant: G1, G2 (mass 270 of 282).
Fixture MakeFixture() {
  Fixture f;
  f.micro_severity = {{1, 100.0}, {2, 90.0}, {3, 80.0},
                      {4, 5.0},   {5, 4.0},  {6, 3.0}};
  f.all.threshold = 50.0;
  f.all.clusters.push_back(Macro(101, {{1, 100.0}, {2, 90.0}}));
  f.all.clusters.push_back(Macro(102, {{3, 80.0}}));
  f.all.clusters.push_back(Macro(103, {{4, 5.0}, {5, 4.0}}));
  f.all.clusters.push_back(Macro(104, {{6, 3.0}}));
  f.gt = ComputeGroundTruth(f.all);
  return f;
}

TEST(GroundTruthTest, ExtractsSignificantClustersAndMicros) {
  const Fixture f = MakeFixture();
  ASSERT_EQ(f.gt.significant.size(), 2u);
  EXPECT_DOUBLE_EQ(f.gt.significant_mass, 270.0);
  EXPECT_EQ(f.gt.threshold, 50.0);
  EXPECT_TRUE(f.gt.significant_micros.contains(1));
  EXPECT_TRUE(f.gt.significant_micros.contains(2));
  EXPECT_TRUE(f.gt.significant_micros.contains(3));
  EXPECT_FALSE(f.gt.significant_micros.contains(4));
}

TEST(EvaluateMassTest, AllScoresItsOwnMassFractions) {
  const Fixture f = MakeFixture();
  const PrecisionRecall pr = EvaluateMass(f.all, f.gt, f.micro_severity);
  EXPECT_DOUBLE_EQ(pr.precision, 270.0 / 282.0);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
  EXPECT_EQ(pr.returned_clusters, 4u);
  EXPECT_EQ(pr.true_significant, 2u);
}

TEST(EvaluateMassTest, PruneStyleResultLosesRecallKeepsPrecision) {
  const Fixture f = MakeFixture();
  // A Pru-like result: only the biggest micros survived.
  QueryResult pru;
  pru.threshold = 50.0;
  pru.clusters.push_back(Macro(201, {{1, 100.0}}));
  pru.clusters.push_back(Macro(202, {{3, 80.0}}));
  const PrecisionRecall pr = EvaluateMass(pru, f.gt, f.micro_severity);
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);  // everything returned is GT mass
  EXPECT_DOUBLE_EQ(pr.recall, 180.0 / 270.0);  // micro 2's mass missing
}

TEST(EvaluateMassTest, NoiseOnlyResultScoresZeroPrecision) {
  const Fixture f = MakeFixture();
  QueryResult noise;
  noise.threshold = 50.0;
  noise.clusters.push_back(Macro(301, {{4, 5.0}, {6, 3.0}}));
  const PrecisionRecall pr = EvaluateMass(noise, f.gt, f.micro_severity);
  EXPECT_DOUBLE_EQ(pr.precision, 0.0);
  EXPECT_DOUBLE_EQ(pr.recall, 0.0);
}

TEST(EvaluateMassTest, EmptyResult) {
  const Fixture f = MakeFixture();
  QueryResult empty;
  empty.threshold = 50.0;
  const PrecisionRecall pr = EvaluateMass(empty, f.gt, f.micro_severity);
  EXPECT_DOUBLE_EQ(pr.precision, 0.0);
  EXPECT_DOUBLE_EQ(pr.recall, 0.0);
}

TEST(EvaluateMassTest, EmptyGroundTruthGivesRecallOne) {
  QueryResult all;
  all.threshold = 1e9;
  all.clusters.push_back(Macro(1, {{1, 10.0}}));
  const GroundTruth gt = ComputeGroundTruth(all);
  EXPECT_TRUE(gt.significant.empty());
  const std::map<ClusterId, double> severities = {{1, 10.0}};
  const PrecisionRecall pr = EvaluateMass(all, gt, severities);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
  EXPECT_DOUBLE_EQ(pr.precision, 0.0);
}

TEST(EvaluateClusterMatchTest, AllMatchesItself) {
  const Fixture f = MakeFixture();
  const PrecisionRecall pr =
      EvaluateClusterMatch(f.all, f.gt, f.micro_severity);
  // G1 and G2 match themselves; T1, T2 match nothing.
  EXPECT_DOUBLE_EQ(pr.precision, 0.5);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
}

TEST(EvaluateClusterMatchTest, PartialRecoveryHonorsOverlapThreshold) {
  const Fixture f = MakeFixture();
  // Returned cluster recovers only micro 2 (90 of G1's 190 = 47%).
  QueryResult partial;
  partial.clusters.push_back(Macro(401, {{2, 90.0}}));
  ClusterMatchParams strict;
  strict.overlap = 0.5;
  PrecisionRecall pr =
      EvaluateClusterMatch(partial, f.gt, f.micro_severity, strict);
  EXPECT_DOUBLE_EQ(pr.precision, 0.0);
  EXPECT_DOUBLE_EQ(pr.recall, 0.0);
  ClusterMatchParams loose;
  loose.overlap = 0.4;
  pr = EvaluateClusterMatch(partial, f.gt, f.micro_severity, loose);
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 0.5);  // G1 of {G1, G2}
}

TEST(EvaluateClusterMatchTest, FragmentedReturnStillRecoversGt) {
  const Fixture f = MakeFixture();
  // G1 returned as two fragments, each > 40% of G1.
  QueryResult fragmented;
  fragmented.clusters.push_back(Macro(501, {{1, 100.0}}));
  fragmented.clusters.push_back(Macro(502, {{2, 90.0}}));
  ClusterMatchParams params;
  params.overlap = 0.4;
  const PrecisionRecall pr =
      EvaluateClusterMatch(fragmented, f.gt, f.micro_severity, params);
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 0.5);
}

}  // namespace
}  // namespace analytics
}  // namespace atypical
